(* Tests of the loop-lifted sequence-table model (paper §4.1),
   including the paper's own $x/$y/$z loop-lifting example. *)

module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table

let str s = Item.Str s
let int i = Item.Int (Int64.of_int i)

let items : Item.t list Alcotest.testable =
  Alcotest.testable
    (Fmt.Dump.list (fun fmt i -> Item.pp fmt i))
    (List.equal Item.equal)

let test_make_checks () =
  Alcotest.(check bool) "decreasing iters rejected" true
    (match Table.make [| 2; 1 |] [| str "a"; str "b" |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "length mismatch rejected" true
    (match Table.make [| 1 |] [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_const () =
  let t = Table.const ~loop:[| 1; 2; 3 |] [ str "x"; str "y" ] in
  Alcotest.(check int) "rows" 6 (Table.row_count t);
  Alcotest.check items "iter 2" [ str "x"; str "y" ] (Table.sequence_of_iter t 2);
  Alcotest.check items "absent iter" [] (Table.sequence_of_iter t 5)

(* The paper's running example: for $x in ("twenty","thirty")
   for $y in ("one","two") let $z := ($x,$y) return $z. *)
let test_paper_loop_lifting_example () =
  let outer_loop = [| 1 |] in
  let x_src = Table.const ~loop:outer_loop [ str "twenty"; str "thirty" ] in
  let exp_x = Table.expand x_src in
  (* Inside the $x loop there are two iterations. *)
  Alcotest.(check int) "x iterations" 2 (Array.length exp_x.Table.inner_loop);
  let y_src = Table.const ~loop:exp_x.Table.inner_loop [ str "one"; str "two" ] in
  let exp_y = Table.expand y_src in
  Alcotest.(check int) "y iterations" 4 (Array.length exp_y.Table.inner_loop);
  (* $x lifted into the inner loop: "twenty","twenty","thirty","thirty". *)
  let x_inner =
    Table.lift exp_x.Table.var_table ~outer_of_inner:exp_y.Table.outer_of_inner
  in
  Alcotest.check items "x lifted"
    [ str "twenty"; str "twenty"; str "thirty"; str "thirty" ]
    (List.concat_map
       (fun it -> Table.sequence_of_iter x_inner it)
       (Array.to_list exp_y.Table.inner_loop));
  (* $z := ($x, $y): per-iteration concatenation. *)
  let z = Table.append2 x_inner exp_y.Table.var_table in
  Alcotest.check items "z iter 0" [ str "twenty"; str "one" ]
    (Table.sequence_of_iter z 0);
  Alcotest.check items "z iter 3" [ str "thirty"; str "two" ]
    (Table.sequence_of_iter z 3);
  (* return $z, mapped back through both loops: the 8-row table of the
     paper, then the final sequence. *)
  let back_y = Table.backmap z ~outer_of_inner:exp_y.Table.outer_of_inner in
  Alcotest.(check int) "8 rows" 8 (Table.row_count back_y);
  let back_x =
    Table.backmap back_y ~outer_of_inner:exp_x.Table.outer_of_inner
  in
  Alcotest.check items "final sequence"
    [
      str "twenty"; str "one"; str "twenty"; str "two";
      str "thirty"; str "one"; str "thirty"; str "two";
    ]
    (Table.sequence_of_iter back_x 1)

let test_expand_positions () =
  let t = Table.make [| 1; 1; 3 |] [| str "a"; str "b"; str "c" |] in
  let e = Table.expand t in
  Alcotest.check items "positions restart per iter" [ int 1; int 2; int 1 ]
    (Array.to_list e.Table.pos_table.Table.items)

let test_count_exists () =
  let t = Table.make [| 1; 1; 3 |] [| str "a"; str "b"; str "c" |] in
  let loop = [| 1; 2; 3 |] in
  Alcotest.check items "count includes empty iters" [ int 2; int 0; int 1 ]
    (Array.to_list (Table.count ~loop t).Table.items);
  Alcotest.check items "exists"
    [ Item.Bool true; Item.Bool false; Item.Bool true ]
    (Array.to_list (Table.exists ~loop t).Table.items)

let test_append2_order () =
  let t1 = Table.make [| 1; 2 |] [| str "a"; str "c" |] in
  let t2 = Table.make [| 1; 3 |] [| str "b"; str "d" |] in
  let t = Table.append2 t1 t2 in
  Alcotest.check items "iter 1 keeps order" [ str "a"; str "b" ]
    (Table.sequence_of_iter t 1);
  Alcotest.check items "iter 2" [ str "c" ] (Table.sequence_of_iter t 2);
  Alcotest.check items "iter 3" [ str "d" ] (Table.sequence_of_iter t 3)

let test_distinct_doc_order () =
  let n doc_id pre = Item.Node { Standoff_store.Collection.doc_id; pre } in
  let t =
    Table.make [| 1; 1; 1; 2 |] [| n 0 9; n 0 3; n 0 9; n 1 1 |]
  in
  let d = Table.distinct_doc_order t in
  Alcotest.check items "sorted deduped" [ n 0 3; n 0 9 ]
    (Table.sequence_of_iter d 1);
  Alcotest.check items "iter 2 untouched" [ n 1 1 ] (Table.sequence_of_iter d 2)

let test_filter_map () =
  let t = Table.make [| 1; 1; 2 |] [| int 1; int 2; int 3 |] in
  let even =
    Table.filter
      (function Item.Int i -> Int64.rem i 2L = 0L | _ -> false)
      t
  in
  Alcotest.(check int) "filtered rows" 1 (Table.row_count even);
  let doubled =
    Table.map_items
      (function Item.Int i -> Item.Int (Int64.mul 2L i) | x -> x)
      t
  in
  Alcotest.check items "mapped" [ int 2; int 4 ] (Table.sequence_of_iter doubled 1)

let test_of_rows_stable () =
  let t = Table.of_rows [ (2, str "x"); (1, str "a"); (2, str "y") ] in
  Alcotest.check items "iter 2 order preserved" [ str "x"; str "y" ]
    (Table.sequence_of_iter t 2);
  Alcotest.check items "iter 1" [ str "a" ] (Table.sequence_of_iter t 1)

let test_to_sequence_guard () =
  let t = Table.make [| 1; 2 |] [| str "a"; str "b" |] in
  Alcotest.(check bool) "multi-iter rejected" true
    (match Table.to_sequence t with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* lift distributes over iteration structure: lifting a table through
   expand's identity mapping is the identity. *)
let qcheck_lift_identity =
  QCheck.Test.make ~name:"lift through identity outer_of_inner" ~count:300
    QCheck.(list (pair (int_bound 5) small_nat))
    (fun rows ->
      let rows = List.map (fun (it, v) -> (it, int v)) rows in
      let t = Table.of_rows rows in
      let iters = Table.iters_present t in
      let lifted = Table.lift t ~outer_of_inner:iters in
      (* Inner iteration i receives iters.(i)'s sequence. *)
      Array.for_all
        (fun i ->
          List.equal Item.equal
            (Table.sequence_of_iter lifted i)
            (Table.sequence_of_iter t iters.(i)))
        (Array.init (Array.length iters) Fun.id))

let qcheck_append2_rowcount =
  QCheck.Test.make ~name:"append2 preserves rows" ~count:300
    QCheck.(pair (list (pair (int_bound 5) small_nat)) (list (pair (int_bound 5) small_nat)))
    (fun (r1, r2) ->
      let t1 = Table.of_rows (List.map (fun (i, v) -> (i, int v)) r1) in
      let t2 = Table.of_rows (List.map (fun (i, v) -> (i, int v)) r2) in
      Table.row_count (Table.append2 t1 t2)
      = Table.row_count t1 + Table.row_count t2)

let () =
  Alcotest.run "relalg"
    [
      ( "table",
        [
          Alcotest.test_case "make checks" `Quick test_make_checks;
          Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "paper loop-lifting example" `Quick
            test_paper_loop_lifting_example;
          Alcotest.test_case "expand positions" `Quick test_expand_positions;
          Alcotest.test_case "count/exists" `Quick test_count_exists;
          Alcotest.test_case "append2 order" `Quick test_append2_order;
          Alcotest.test_case "distinct doc order" `Quick test_distinct_doc_order;
          Alcotest.test_case "filter/map" `Quick test_filter_map;
          Alcotest.test_case "of_rows stable" `Quick test_of_rows_stable;
          Alcotest.test_case "to_sequence guard" `Quick test_to_sequence_guard;
          QCheck_alcotest.to_alcotest qcheck_lift_identity;
          QCheck_alcotest.to_alcotest qcheck_append2_rowcount;
        ] );
    ]
