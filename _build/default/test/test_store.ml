(* Shredded store tests: the pre/size/level encoding, attribute table,
   element index, string values, DOM re-materialisation, and the
   collection/blob layers. *)

module Dom = Standoff_xml.Dom
module Parser = Standoff_xml.Parser
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area

let sample =
  "<site><people><person id=\"p0\"><name>Alice</name></person>\
   <person id=\"p1\"><name>Bob</name></person></people>\
   <open_auctions><open_auction id=\"a0\"><bidder><increase>3</increase>\
   </bidder></open_auction></open_auctions></site>"

let doc () = Doc.parse ~name:"sample.xml" sample

let test_shred_counts () =
  let d = doc () in
  (* document + site + people + 2*(person+name+text) + open_auctions +
     open_auction + bidder + increase + text *)
  Alcotest.(check int) "node count" 14 (Doc.node_count d);
  Alcotest.(check int) "attr count" 3 (Doc.attribute_count d);
  Alcotest.(check int) "root pre" 1 (Doc.root d)

let test_invariants () =
  Doc.check_invariants (doc ())

let test_kinds_names () =
  let d = doc () in
  Alcotest.(check bool) "pre 0 document" true (Doc.kind_of d 0 = Doc.Document);
  Alcotest.(check (option string)) "root name" (Some "site") (Doc.name_of d 1);
  Alcotest.(check (option string)) "doc node unnamed" None (Doc.name_of d 0)

let test_children_parent () =
  let d = doc () in
  let site = Doc.root d in
  let kids = Doc.children d site in
  Alcotest.(check int) "site children" 2 (List.length kids);
  List.iter
    (fun c ->
      Alcotest.(check (option int)) "parent" (Some site) (Doc.parent_of d c))
    kids

let test_is_ancestor () =
  let d = doc () in
  let site = Doc.root d in
  Alcotest.(check bool) "doc is ancestor of all" true (Doc.is_ancestor d 0 site);
  Alcotest.(check bool) "site ancestor of last" true
    (Doc.is_ancestor d site (Doc.node_count d - 1));
  Alcotest.(check bool) "not self" false (Doc.is_ancestor d site site);
  Alcotest.(check bool) "not reverse" false (Doc.is_ancestor d (site + 1) site)

let test_attributes () =
  let d = doc () in
  let people = Doc.elements_named d "person" in
  Alcotest.(check int) "two persons" 2 (Array.length people);
  Alcotest.(check (option string)) "first id" (Some "p0")
    (Doc.attribute d people.(0) "id");
  Alcotest.(check (option string)) "second id" (Some "p1")
    (Doc.attribute d people.(1) "id");
  Alcotest.(check (option string)) "absent" None
    (Doc.attribute d people.(0) "name");
  Alcotest.(check (list (pair string string)))
    "attribute list" [ ("id", "p0") ]
    (Doc.attributes d people.(0))

let test_elem_index_sorted () =
  let d = doc () in
  let names = Doc.elements_named d "name" in
  Alcotest.(check int) "two names" 2 (Array.length names);
  Alcotest.(check bool) "sorted" true (names.(0) < names.(1));
  Alcotest.(check int) "unknown name" 0 (Array.length (Doc.elements_named d "zzz"))

let test_string_value () =
  let d = doc () in
  Alcotest.(check string) "whole document" "AliceBob3" (Doc.string_value d 0);
  let names = Doc.elements_named d "name" in
  Alcotest.(check string) "element" "Alice" (Doc.string_value d names.(0))

let test_to_dom_roundtrip () =
  let d = doc () in
  let original = Parser.parse_string sample in
  Alcotest.(check bool) "re-materialised tree equals source" true
    (Dom.equal_node (Dom.Element original.Dom.root) (Doc.to_dom d (Doc.root d)))

let test_iter_children_leaf () =
  let d = doc () in
  let texts = ref 0 in
  for pre = 0 to Doc.node_count d - 1 do
    if Doc.kind_of d pre = Doc.Text then begin
      incr texts;
      Alcotest.(check (list int)) "no children" [] (Doc.children d pre)
    end
  done;
  Alcotest.(check int) "three text nodes" 3 !texts

(* ------------------------------------------------------------ *)
(* Random-tree invariants                                        *)

let gen_tree =
  let open QCheck.Gen in
  let rec node depth =
    if depth = 0 then return (Dom.text "t")
    else
      frequency
        [
          (2, return (Dom.text "leaf"));
          ( 4,
            map2
              (fun tag children -> Dom.element tag children)
              (oneofl [ "a"; "b"; "c" ])
              (list_size (0 -- 4) (node (depth - 1))) );
        ]
  in
  map
    (fun children -> Dom.document (Dom.element "root" children))
    (list_size (0 -- 5) (node 4))

let arbitrary_tree =
  QCheck.make ~print:(fun d -> Standoff_xml.Serializer.to_string d) gen_tree

let qcheck_shred_invariants =
  QCheck.Test.make ~name:"shredding invariants on random trees" ~count:300
    arbitrary_tree (fun dom ->
      let d = Doc.of_dom ~name:"t" dom in
      Doc.check_invariants d;
      true)

let qcheck_shred_roundtrip =
  QCheck.Test.make ~name:"to_dom inverts shredding" ~count:300 arbitrary_tree
    (fun dom ->
      let d = Doc.of_dom ~name:"t" dom in
      Dom.equal_node (Dom.Element dom.Dom.root) (Doc.to_dom d (Doc.root d)))

let qcheck_size_is_descendant_count =
  QCheck.Test.make ~name:"size(p) counts proper descendants" ~count:200
    arbitrary_tree (fun dom ->
      let d = Doc.of_dom ~name:"t" dom in
      let ok = ref true in
      for p = 0 to Doc.node_count d - 1 do
        let counted = ref 0 in
        for q = 0 to Doc.node_count d - 1 do
          if Doc.is_ancestor d p q then incr counted
        done;
        if !counted <> Doc.subtree_size d p then ok := false
      done;
      !ok)

(* ------------------------------------------------------------ *)
(* Collection                                                     *)

let test_collection_basics () =
  let coll = Collection.create () in
  let id1 = Collection.load_string coll ~name:"one.xml" "<a><b/></a>" in
  let id2 = Collection.load_string coll ~name:"two.xml" "<c/>" in
  Alcotest.(check int) "ids dense" 1 (id2 - id1);
  Alcotest.(check int) "count" 2 (Collection.doc_count coll);
  Alcotest.(check (option int)) "lookup" (Some id1)
    (Collection.doc_id_of_name coll "one.xml");
  Alcotest.(check (option int)) "missing" None
    (Collection.doc_id_of_name coll "nope.xml")

let test_collection_duplicate () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"d.xml" "<a/>");
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Collection.add: duplicate document \"d.xml\"")
    (fun () -> ignore (Collection.load_string coll ~name:"d.xml" "<b/>"))

let test_node_order () =
  let a = { Collection.doc_id = 0; pre = 5 } in
  let b = { Collection.doc_id = 0; pre = 9 } in
  let c = { Collection.doc_id = 1; pre = 0 } in
  Alcotest.(check bool) "same doc by pre" true (Collection.compare_node a b < 0);
  Alcotest.(check bool) "doc id dominates" true (Collection.compare_node b c < 0)

(* ------------------------------------------------------------ *)
(* Blob                                                           *)

let test_blob_append_read () =
  let b = Blob.create ~name:"video.bin" () in
  let r1 = Blob.append b "hello " in
  let r2 = Blob.append b "world" in
  Alcotest.(check string) "r1 span" "[0,5]" (Region.to_string r1);
  Alcotest.(check string) "r2 span" "[6,10]" (Region.to_string r2);
  Alcotest.(check string) "read r2" "world" (Blob.read b r2);
  Alcotest.(check int64) "length" 11L (Blob.length b)

let test_blob_read_area () =
  let b = Blob.of_string ~name:"disk.img" "0123456789" in
  let area = Area.make [ Region.make_int 0 2; Region.make_int 7 9 ] in
  Alcotest.(check string) "scattered blocks" "012789" (Blob.read_area b area)

let test_blob_out_of_range () =
  let b = Blob.of_string ~name:"x" "abc" in
  Alcotest.(check bool) "raises" true
    (match Blob.read b (Region.make_int 1 5) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "store"
    [
      ( "doc",
        [
          Alcotest.test_case "shred counts" `Quick test_shred_counts;
          Alcotest.test_case "invariants" `Quick test_invariants;
          Alcotest.test_case "kinds and names" `Quick test_kinds_names;
          Alcotest.test_case "children/parent" `Quick test_children_parent;
          Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "element index" `Quick test_elem_index_sorted;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "to_dom roundtrip" `Quick test_to_dom_roundtrip;
          Alcotest.test_case "leaves have no children" `Quick
            test_iter_children_leaf;
          QCheck_alcotest.to_alcotest qcheck_shred_invariants;
          QCheck_alcotest.to_alcotest qcheck_shred_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_size_is_descendant_count;
        ] );
      ( "collection",
        [
          Alcotest.test_case "basics" `Quick test_collection_basics;
          Alcotest.test_case "duplicate" `Quick test_collection_duplicate;
          Alcotest.test_case "node order" `Quick test_node_order;
        ] );
      ( "blob",
        [
          Alcotest.test_case "append/read" `Quick test_blob_append_read;
          Alcotest.test_case "read area" `Quick test_blob_read_area;
          Alcotest.test_case "out of range" `Quick test_blob_out_of_range;
        ] );
    ]
