exception Parse_error of { line : int; col : int; msg : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let fail st msg =
  raise (Parse_error { line = st.line; col = st.pos - st.bol + 1; msg })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else String.unsafe_get st.src st.pos

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000'
  else String.unsafe_get st.src (st.pos + 1)

let advance st =
  if not (eof st) then begin
    if String.unsafe_get st.src st.pos = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_string st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let parse_name st =
  if not (is_name_start (peek st)) then
    fail st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity and character references.  The buffer receives the decoded
   text; character references above 127 are re-encoded as UTF-8. *)
let add_utf8 buf code st =
  if code < 0 || code > 0x10FFFF || (code >= 0xD800 && code <= 0xDFFF) then
    fail st (Printf.sprintf "invalid character reference %d" code);
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_reference st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let code =
      if peek st = 'x' || peek st = 'X' then begin
        advance st;
        let start = st.pos in
        while
          (not (eof st))
          &&
          match peek st with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
          | _ -> false
        do
          advance st
        done;
        if st.pos = start then fail st "empty hexadecimal character reference";
        int_of_string ("0x" ^ String.sub st.src start (st.pos - start))
      end
      else begin
        let start = st.pos in
        while (not (eof st)) && peek st >= '0' && peek st <= '9' do
          advance st
        done;
        if st.pos = start then fail st "empty character reference";
        int_of_string (String.sub st.src start (st.pos - start))
      end
    in
    expect st ';';
    add_utf8 buf code st
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else
      match peek st with
      | c when c = quote -> advance st
      | '&' ->
          parse_reference st buf;
          loop ()
      | '<' -> fail st "'<' not allowed in attribute value"
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attributes st =
  let rec loop acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let attr_name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let attr_value = parse_attr_value st in
      if List.exists (fun a -> String.equal a.Dom.attr_name attr_name) acc then
        fail st (Printf.sprintf "duplicate attribute %S" attr_name);
      loop ({ Dom.attr_name; attr_value } :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_comment st =
  skip_string st "<!--";
  let start = st.pos in
  let rec loop () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "--" then begin
      let text = String.sub st.src start (st.pos - start) in
      skip_string st "--";
      expect st '>';
      text
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let parse_pi st =
  skip_string st "<?";
  let target = parse_name st in
  skip_ws st;
  let start = st.pos in
  let rec loop () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let data = String.sub st.src start (st.pos - start) in
      skip_string st "?>";
      data
    end
    else begin
      advance st;
      loop ()
    end
  in
  let data = loop () in
  if String.lowercase_ascii target = "xml" then
    fail st "reserved PI target 'xml' inside content";
  Dom.Pi (target, data)

let parse_cdata st buf =
  skip_string st "<![CDATA[";
  let rec loop () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then skip_string st "]]>"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ()

(* Character data up to the next markup; handles references and CDATA
   coalescing into one text node. *)
let parse_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st then ()
    else
      match peek st with
      | '<' when looking_at st "<![CDATA[" ->
          parse_cdata st buf;
          loop ()
      | '<' -> ()
      | '&' ->
          parse_reference st buf;
          loop ()
      | c ->
          if c = ']' && looking_at st "]]>" then
            fail st "']]>' not allowed in character data";
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  Buffer.contents buf

let rec parse_element st =
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then begin
    skip_string st "/>";
    { Dom.tag; attrs; children = [] }
  end
  else begin
    expect st '>';
    let children = parse_content st in
    skip_string st "</";
    let close = parse_name st in
    if not (String.equal close tag) then
      fail st (Printf.sprintf "mismatched close tag: <%s> closed by </%s>" tag close);
    skip_ws st;
    expect st '>';
    { Dom.tag; attrs; children }
  end

and parse_content st =
  let items = ref [] in
  let push n = items := n :: !items in
  let rec loop () =
    if eof st then fail st "unexpected end of input inside element"
    else if looking_at st "</" then ()
    else if looking_at st "<!--" then begin
      push (Dom.Comment (parse_comment st));
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      let text = parse_text st in
      if String.length text > 0 then push (Dom.Text text);
      loop ()
    end
    else if looking_at st "<?" then begin
      push (parse_pi st);
      loop ()
    end
    else if peek st = '<' && peek2 st = '!' then fail st "unexpected '<!'"
    else if peek st = '<' then begin
      push (Dom.Element (parse_element st));
      loop ()
    end
    else begin
      let text = parse_text st in
      if String.length text > 0 then push (Dom.Text text);
      loop ()
    end
  in
  loop ();
  List.rev !items

(* The DOCTYPE declaration is recognised and skipped; a bracketed
   internal subset is consumed without interpretation. *)
let skip_doctype st =
  skip_string st "<!DOCTYPE";
  let depth = ref 0 in
  let rec loop () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
          incr depth;
          advance st;
          loop ()
      | ']' ->
          decr depth;
          advance st;
          loop ()
      | '>' when !depth = 0 -> advance st
      | _ ->
          advance st;
          loop ()
  in
  loop ()

let parse_misc st acc =
  (* Comments, PIs and whitespace around the root element. *)
  let rec loop acc =
    skip_ws st;
    if looking_at st "<!--" then loop (Dom.Comment (parse_comment st) :: acc)
    else if looking_at st "<?" then loop (parse_pi st :: acc)
    else acc
  in
  loop acc

let parse_document st =
  if looking_at st "<?xml" then begin
    (* XML declaration: treated as a PI-shaped header and discarded. *)
    skip_string st "<?xml";
    let rec loop () =
      if eof st then fail st "unterminated XML declaration"
      else if looking_at st "?>" then skip_string st "?>"
      else begin
        advance st;
        loop ()
      end
    in
    loop ()
  end;
  let prolog = List.rev (parse_misc st []) in
  let prolog =
    if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      List.rev (parse_misc st (List.rev prolog))
    end
    else prolog
  in
  if eof st || peek st <> '<' then fail st "expected root element";
  let root = parse_element st in
  let epilog = List.rev (parse_misc st []) in
  skip_ws st;
  if not (eof st) then fail st "trailing content after document end";
  { Dom.prolog; root; epilog }

let parse_string s = parse_document (make s)

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      parse_string s)

let parse_fragment s =
  let st = make s in
  let items = ref [] in
  let push n = items := n :: !items in
  let rec loop () =
    if eof st then ()
    else if looking_at st "<!--" then begin
      push (Dom.Comment (parse_comment st));
      loop ()
    end
    else if looking_at st "<?" then begin
      push (parse_pi st);
      loop ()
    end
    else if looking_at st "</" then fail st "unexpected close tag"
    else if peek st = '<' && peek2 st <> '!' then begin
      push (Dom.Element (parse_element st));
      loop ()
    end
    else begin
      let text = parse_text st in
      if String.length text > 0 then push (Dom.Text text);
      loop ()
    end
  in
  loop ();
  List.rev !items

let error_to_string = function
  | Parse_error { line; col; msg } ->
      Some (Printf.sprintf "line %d, col %d: %s" line col msg)
  | _ -> None
