(** In-memory XML trees.

    This DOM is the exchange format between the parser, the generators
    and the shredded store; query evaluation never runs on it (it runs
    on the columnar store in [Standoff_store]). *)

type attribute = {
  attr_name : string;
  attr_value : string;
}

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = {
  prolog : node list;  (** comments / processing instructions before the root *)
  root : element;
  epilog : node list;  (** comments / processing instructions after the root *)
}

(** [element ?attrs tag children] builds an element node. *)
val element : ?attrs:(string * string) list -> string -> node list -> node

(** [text s] builds a text node. *)
val text : string -> node

(** [document root] wraps a root element (given as [Element e]) into a
    document with empty prolog/epilog.
    @raise Invalid_argument if [root] is not an element. *)
val document : node -> document

(** [attr el name] is the value of attribute [name] on [el], if any. *)
val attr : element -> string -> string option

(** [with_attr el name value] replaces or adds an attribute. *)
val with_attr : element -> string -> string -> element

(** [children_elements el] is the element children of [el], in order. *)
val children_elements : element -> element list

(** [text_content n] concatenates all descendant text of [n], in
    document order. *)
val text_content : node -> string

(** [count_nodes n] is the number of nodes in the subtree rooted at
    [n], counting [n] itself but not attributes. *)
val count_nodes : node -> int

(** [equal_node a b] is structural equality of subtrees. *)
val equal_node : node -> node -> bool

(** [equal a b] is structural equality of documents. *)
val equal : document -> document -> bool

(** [is_ws_only s] tests whether [s] consists of XML whitespace
    (space, tab, CR, LF) only. *)
val is_ws_only : string -> bool

(** [strip_whitespace doc] removes whitespace-only text nodes
    everywhere, the usual preparation step before shredding
    data-centric documents. *)
val strip_whitespace : document -> document

(** [valid_name s] checks [s] against the (simplified, ASCII) XML Name
    production used throughout this repository: a letter, ['_'] or
    [':'] followed by letters, digits, ['.'], ['-'], ['_'], [':']. *)
val valid_name : string -> bool
