let escape_into buf s ~attr =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | '\t' when attr -> Buffer.add_string buf "&#9;"
      | '\n' when attr -> Buffer.add_string buf "&#10;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s ~attr:false;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s ~attr:true;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun { Dom.attr_name; attr_value } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf attr_name;
      Buffer.add_string buf "=\"";
      escape_into buf attr_value ~attr:true;
      Buffer.add_char buf '"')
    attrs

let has_text_child el =
  List.exists (function Dom.Text _ -> true | _ -> false) el.Dom.children

let rec add_node ?indent ~level buf n =
  let pad () =
    match indent with
    | Some w ->
        if level > 0 || Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * level) ' ')
    | None -> ()
  in
  match n with
  | Dom.Text s -> escape_into buf s ~attr:false
  | Dom.Comment s ->
      pad ();
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Dom.Pi (target, data) ->
      pad ();
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if String.length data > 0 then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf data
      end;
      Buffer.add_string buf "?>"
  | Dom.Element el ->
      pad ();
      Buffer.add_char buf '<';
      Buffer.add_string buf el.tag;
      add_attrs buf el.attrs;
      if el.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        (* Mixed content is serialized without added whitespace so the
           text round-trips byte-for-byte. *)
        let child_indent = if has_text_child el then None else indent in
        List.iter
          (fun c -> add_node ?indent:child_indent ~level:(level + 1) buf c)
          el.children;
        (match (indent, child_indent) with
        | Some w, Some _ ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (w * level) ' ')
        | _ -> ());
        Buffer.add_string buf "</";
        Buffer.add_string buf el.tag;
        Buffer.add_char buf '>'
      end

let node_to_buffer ?indent buf n = add_node ?indent ~level:0 buf n

let node_to_string ?indent n =
  let buf = Buffer.create 256 in
  node_to_buffer ?indent buf n;
  Buffer.contents buf

let to_string ?indent ?(declaration = false) (doc : Dom.document) =
  let buf = Buffer.create 1024 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  List.iter
    (fun n ->
      node_to_buffer ?indent buf n;
      Buffer.add_char buf '\n')
    doc.prolog;
  node_to_buffer ?indent buf (Dom.Element doc.root);
  List.iter
    (fun n ->
      Buffer.add_char buf '\n';
      node_to_buffer ?indent buf n)
    doc.epilog;
  Buffer.contents buf

let to_file ?indent ?declaration path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?indent ?declaration doc))
