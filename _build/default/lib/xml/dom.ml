type attribute = {
  attr_name : string;
  attr_value : string;
}

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type document = {
  prolog : node list;
  root : element;
  epilog : node list;
}

let element ?(attrs = []) tag children =
  let attrs =
    List.map (fun (attr_name, attr_value) -> { attr_name; attr_value }) attrs
  in
  Element { tag; attrs; children }

let text s = Text s

let document root =
  match root with
  | Element e -> { prolog = []; root = e; epilog = [] }
  | Text _ | Comment _ | Pi _ ->
      invalid_arg "Dom.document: root must be an element"

let attr el name =
  List.find_map
    (fun a -> if String.equal a.attr_name name then Some a.attr_value else None)
    el.attrs

let with_attr el name value =
  let replaced = ref false in
  let attrs =
    List.map
      (fun a ->
        if String.equal a.attr_name name then begin
          replaced := true;
          { a with attr_value = value }
        end
        else a)
      el.attrs
  in
  let attrs =
    if !replaced then attrs
    else attrs @ [ { attr_name = name; attr_value = value } ]
  in
  { el with attrs }

let children_elements el =
  List.filter_map
    (function Element e -> Some e | Text _ | Comment _ | Pi _ -> None)
    el.children

let text_content n =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter go e.children
    | Comment _ | Pi _ -> ()
  in
  go n;
  Buffer.contents buf

let rec count_nodes = function
  | Text _ | Comment _ | Pi _ -> 1
  | Element e -> List.fold_left (fun acc c -> acc + count_nodes c) 1 e.children

let rec equal_node a b =
  match (a, b) with
  | Text x, Text y | Comment x, Comment y -> String.equal x y
  | Pi (t1, d1), Pi (t2, d2) -> String.equal t1 t2 && String.equal d1 d2
  | Element e1, Element e2 ->
      String.equal e1.tag e2.tag
      && List.equal
           (fun a1 a2 ->
             String.equal a1.attr_name a2.attr_name
             && String.equal a1.attr_value a2.attr_value)
           e1.attrs e2.attrs
      && List.equal equal_node e1.children e2.children
  | (Text _ | Comment _ | Pi _ | Element _), _ -> false

let equal d1 d2 =
  List.equal equal_node d1.prolog d2.prolog
  && equal_node (Element d1.root) (Element d2.root)
  && List.equal equal_node d1.epilog d2.epilog

let is_ws_only s =
  let ok = ref true in
  String.iter
    (fun c -> match c with ' ' | '\t' | '\r' | '\n' -> () | _ -> ok := false)
    s;
  !ok

let strip_whitespace doc =
  let rec strip_node = function
    | Element e ->
        let children =
          List.filter_map
            (fun c ->
              match c with
              | Text s when is_ws_only s -> None
              | c -> Some (strip_node c))
            e.children
        in
        Element { e with children }
    | (Text _ | Comment _ | Pi _) as n -> n
  in
  match strip_node (Element doc.root) with
  | Element root -> { doc with root }
  | Text _ | Comment _ | Pi _ -> assert false

let valid_name s =
  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let is_name_char c =
    is_name_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'
  in
  String.length s > 0
  && is_name_start s.[0]
  && (let ok = ref true in
      String.iteri (fun i c -> if i > 0 && not (is_name_char c) then ok := false) s;
      !ok)
