lib/xml/dom.mli:
