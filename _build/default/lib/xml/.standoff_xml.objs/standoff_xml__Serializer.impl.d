lib/xml/serializer.ml: Buffer Dom Fun List String
