lib/xml/parser.ml: Buffer Char Dom Fun List Printf String
