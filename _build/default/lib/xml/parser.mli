(** A hand-written XML 1.0 parser.

    Supported: elements, attributes (single or double quoted), character
    data, the five predefined entities plus decimal/hexadecimal
    character references, CDATA sections, comments, processing
    instructions, an optional XML declaration, and a DOCTYPE declaration
    (skipped, including a bracketed internal subset).  Not supported:
    external entities, namespaces as a separate layer (qualified names
    are kept verbatim), and non-UTF-8 encodings.

    This is sufficient for every document this repository produces or
    consumes (stand-off annotation documents, XMark data), and keeping
    the parser small keeps it auditable. *)

exception Parse_error of { line : int; col : int; msg : string }
(** Raised on malformed input, with a 1-based source position. *)

(** [parse_string s] parses a complete XML document. *)
val parse_string : string -> Dom.document

(** [parse_file path] parses the file at [path].
    @raise Sys_error on I/O failure. *)
val parse_file : string -> Dom.document

(** [parse_fragment s] parses a sequence of content items (elements,
    text, comments, PIs) that need not be wrapped in a single root —
    convenient in tests. *)
val parse_fragment : string -> Dom.node list

(** [error_to_string e] renders a {!Parse_error} payload as
    ["line L, col C: msg"]. *)
val error_to_string : exn -> string option
