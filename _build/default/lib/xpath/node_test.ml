module Doc = Standoff_store.Doc

type t =
  | Any
  | Name of string
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_pi of string option
  | Kind_element of string option
  | Kind_document

let matches doc test pre =
  match test with
  | Kind_node -> true
  | Any -> Doc.kind_of doc pre = Doc.Element
  | Name n -> (
      Doc.kind_of doc pre = Doc.Element
      && match Doc.name_of doc pre with Some m -> String.equal m n | None -> false)
  | Kind_text -> Doc.kind_of doc pre = Doc.Text
  | Kind_comment -> Doc.kind_of doc pre = Doc.Comment
  | Kind_pi None -> Doc.kind_of doc pre = Doc.Pi
  | Kind_pi (Some target) -> (
      Doc.kind_of doc pre = Doc.Pi
      && match Doc.name_of doc pre with
         | Some m -> String.equal m target
         | None -> false)
  | Kind_element None -> Doc.kind_of doc pre = Doc.Element
  | Kind_element (Some n) -> (
      Doc.kind_of doc pre = Doc.Element
      && match Doc.name_of doc pre with Some m -> String.equal m n | None -> false)
  | Kind_document -> Doc.kind_of doc pre = Doc.Document

let matches_attribute test name =
  match test with
  | Any | Kind_node -> true
  | Name n -> String.equal n name
  | Kind_text | Kind_comment | Kind_pi _ | Kind_element _ | Kind_document ->
      false

let name_filter = function
  | Name n | Kind_element (Some n) -> Some n
  | Any | Kind_node | Kind_text | Kind_comment | Kind_pi _ | Kind_element None
  | Kind_document ->
      None

let pp fmt = function
  | Any -> Format.pp_print_string fmt "*"
  | Name n -> Format.pp_print_string fmt n
  | Kind_node -> Format.pp_print_string fmt "node()"
  | Kind_text -> Format.pp_print_string fmt "text()"
  | Kind_comment -> Format.pp_print_string fmt "comment()"
  | Kind_pi None -> Format.pp_print_string fmt "processing-instruction()"
  | Kind_pi (Some t) -> Format.fprintf fmt "processing-instruction(%s)" t
  | Kind_element None -> Format.pp_print_string fmt "element()"
  | Kind_element (Some n) -> Format.fprintf fmt "element(%s)" n
  | Kind_document -> Format.pp_print_string fmt "document-node()"
