(** XPath axes over the pre/size/level encoding, in the style of
    Staircase Join (Grust et al., VLDB 2003): context pruning plus
    sequential scans of pre ranges.

    All functions take the context as a {e sorted, duplicate-free}
    array of pre ranks from a single document and return the result
    pres sorted and duplicate-free — the XPath step contract the paper
    extends to StandOff steps (§3.2 alt. 4). *)

type axis =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Preceding
  | Following_sibling
  | Preceding_sibling

(** [axis_of_string s] parses the XPath axis name, e.g. ["descendant"].
    @raise Invalid_argument on unknown names. *)
val axis_of_string : string -> axis

(** [axis_to_string a] is the XPath surface name. *)
val axis_to_string : axis -> string

(** [eval doc axis ~context ~test] evaluates one axis step.  Name/kind
    filtering with [test] happens during the scan (selection pushdown),
    never as a post-pass over an unfiltered intermediate. *)
val eval :
  Standoff_store.Doc.t ->
  axis ->
  context:int array ->
  test:Node_test.t ->
  int array

(** [prune_descendant context] removes context nodes already covered by
    an earlier context node's subtree — the staircase pruning that
    makes [Descendant] a single scan over disjoint windows.  Exposed
    for tests and for the benchmark that compares Staircase Join with
    the StandOff merge join (paper §4.6). *)
val prune_descendant : Standoff_store.Doc.t -> int array -> int array

(** [eval_lifted doc axis ~context_iters ~context_pres ~test] is the
    loop-lifted variant: context rows [(iter, pre)] sorted by
    [(iter, pre)], producing result rows in the same representation.
    Each iteration's context is processed with the pruned single-scan
    strategy; iterations sharing the table make this one logical pass
    per step rather than one scan per iteration (paper §4.1). *)
val eval_lifted :
  Standoff_store.Doc.t ->
  axis ->
  context_iters:int array ->
  context_pres:int array ->
  test:Node_test.t ->
  int array * int array
