module Vec = Standoff_util.Vec
module Doc = Standoff_store.Doc

type axis =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Preceding
  | Following_sibling
  | Preceding_sibling

let axis_of_string = function
  | "self" -> Self
  | "child" -> Child
  | "descendant" -> Descendant
  | "descendant-or-self" -> Descendant_or_self
  | "parent" -> Parent
  | "ancestor" -> Ancestor
  | "ancestor-or-self" -> Ancestor_or_self
  | "following" -> Following
  | "preceding" -> Preceding
  | "following-sibling" -> Following_sibling
  | "preceding-sibling" -> Preceding_sibling
  | s -> invalid_arg (Printf.sprintf "Axes.axis_of_string: unknown axis %S" s)

let axis_to_string = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Preceding -> "preceding"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let prune_descendant doc context =
  let out = Vec.create () in
  let window_end = ref (-1) in
  Array.iter
    (fun c ->
      if c > !window_end then begin
        Vec.push out c;
        window_end := c + Doc.subtree_size doc c
      end)
    context;
  Vec.to_array out

(* Emit [pre] into [out] when it passes the node test. *)
let emit doc test out pre = if Node_test.matches doc test pre then Vec.push out pre

let sorted_dedup v =
  Vec.sort compare v;
  let out = Vec.create () in
  Vec.iteri
    (fun i x -> if i = 0 || Vec.get v (i - 1) <> x then Vec.push out x)
    v;
  out

let eval_into doc axis ~context ~test out =
  match axis with
  | Self -> Array.iter (fun c -> emit doc test out c) context
  | Descendant ->
      (* Pruned contexts have pairwise disjoint, increasing windows, so
         the concatenated scans emit sorted distinct results. *)
      Array.iter
        (fun c ->
          for p = c + 1 to c + Doc.subtree_size doc c do
            emit doc test out p
          done)
        (prune_descendant doc context)
  | Descendant_or_self ->
      Array.iter
        (fun c ->
          for p = c to c + Doc.subtree_size doc c do
            emit doc test out p
          done)
        (prune_descendant doc context)
  | Following ->
      (* following(c) = { p | p > c + size(c) }; the union over the
         context is a single scan from the smallest such boundary. *)
      if Array.length context > 0 then begin
        let boundary =
          Array.fold_left
            (fun acc c -> min acc (c + Doc.subtree_size doc c + 1))
            max_int context
        in
        for p = boundary to Doc.node_count doc - 1 do
          emit doc test out p
        done
      end
  | Preceding ->
      (* p precedes some context node iff p's subtree ends before the
         largest context pre; one scan with a constant-time check. *)
      if Array.length context > 0 then begin
        let max_c = context.(Array.length context - 1) in
        for p = 0 to max_c - 1 do
          if p + Doc.subtree_size doc p < max_c then emit doc test out p
        done
      end
  | Child ->
      let tmp = Vec.create () in
      Array.iter (fun c -> Doc.iter_children doc c (fun k -> emit doc test tmp k)) context;
      (* Child sets of distinct parents are disjoint but may interleave
         when one context is an ancestor of another. *)
      Vec.append out (sorted_dedup tmp)
  | Parent ->
      let tmp = Vec.create () in
      Array.iter
        (fun c ->
          match Doc.parent_of doc c with
          | Some p -> emit doc test tmp p
          | None -> ())
        context;
      Vec.append out (sorted_dedup tmp)
  | Ancestor | Ancestor_or_self ->
      let seen = Hashtbl.create 32 in
      let tmp = Vec.create () in
      let rec walk pre =
        if not (Hashtbl.mem seen pre) then begin
          Hashtbl.add seen pre ();
          emit doc test tmp pre;
          match Doc.parent_of doc pre with Some p -> walk p | None -> ()
        end
      in
      Array.iter
        (fun c ->
          match axis with
          | Ancestor_or_self -> walk c
          | _ -> ( match Doc.parent_of doc c with Some p -> walk p | None -> ()))
        context;
      Vec.append out (sorted_dedup tmp)
  | Following_sibling ->
      let tmp = Vec.create () in
      Array.iter
        (fun c ->
          match Doc.parent_of doc c with
          | None -> ()
          | Some parent ->
              let stop = parent + Doc.subtree_size doc parent in
              let s = ref (c + Doc.subtree_size doc c + 1) in
              while !s <= stop do
                emit doc test tmp !s;
                s := !s + Doc.subtree_size doc !s + 1
              done)
        context;
      Vec.append out (sorted_dedup tmp)
  | Preceding_sibling ->
      let tmp = Vec.create () in
      Array.iter
        (fun c ->
          match Doc.parent_of doc c with
          | None -> ()
          | Some parent -> Doc.iter_children doc parent (fun s -> if s < c then emit doc test tmp s))
        context;
      Vec.append out (sorted_dedup tmp)

let eval doc axis ~context ~test =
  let out = Vec.create () in
  eval_into doc axis ~context ~test out;
  Vec.to_array out

let eval_lifted doc axis ~context_iters ~context_pres ~test =
  let n = Array.length context_iters in
  assert (n = Array.length context_pres);
  let out_iters = Vec.create () and out_pres = Vec.create () in
  let i = ref 0 in
  while !i < n do
    let iter = context_iters.(!i) in
    let j = ref !i in
    while !j < n && context_iters.(!j) = iter do
      incr j
    done;
    let context = Array.sub context_pres !i (!j - !i) in
    let group = Vec.create () in
    eval_into doc axis ~context ~test group;
    Vec.iter
      (fun pre ->
        Vec.push out_iters iter;
        Vec.push out_pres pre)
      group;
    i := !j
  done;
  (Vec.to_array out_iters, Vec.to_array out_pres)
