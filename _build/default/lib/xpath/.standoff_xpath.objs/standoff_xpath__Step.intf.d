lib/xpath/step.mli: Axes Node_test Standoff_relalg Standoff_store
