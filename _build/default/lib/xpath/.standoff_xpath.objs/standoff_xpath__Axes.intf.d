lib/xpath/axes.mli: Node_test Standoff_store
