lib/xpath/node_test.ml: Format Standoff_store String
