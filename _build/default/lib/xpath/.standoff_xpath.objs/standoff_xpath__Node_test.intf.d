lib/xpath/node_test.mli: Format Standoff_store
