lib/xpath/axes.ml: Array Hashtbl Node_test Printf Standoff_store Standoff_util
