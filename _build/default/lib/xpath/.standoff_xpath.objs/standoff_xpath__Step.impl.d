lib/xpath/step.ml: Array Axes Hashtbl List Node_test Standoff_relalg Standoff_store Standoff_util
