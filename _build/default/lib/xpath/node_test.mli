(** XPath node tests, applied after an axis selects candidate nodes. *)

type t =
  | Any                        (** [*] — any node of the axis' principal kind *)
  | Name of string             (** name test, e.g. [shot] *)
  | Kind_node                  (** [node()] *)
  | Kind_text                  (** [text()] *)
  | Kind_comment               (** [comment()] *)
  | Kind_pi of string option   (** [processing-instruction(target?)] *)
  | Kind_element of string option  (** [element(name?)] *)
  | Kind_document              (** [document-node()] *)

(** [matches doc test pre] decides whether node [pre] of [doc] passes
    [test], with elements as the principal node kind (the rule for all
    axes except [attribute]). *)
val matches : Standoff_store.Doc.t -> t -> int -> bool

(** [matches_attribute test name] decides whether an attribute called
    [name] passes [test] under the attribute axis' principal kind. *)
val matches_attribute : t -> string -> bool

(** [name_filter test] is [Some n] when the test is a plain name test —
    the hook the engine uses to push the test down into the element
    index / region index (paper §3.3 (iii), §4.3). *)
val name_filter : t -> string option

(** [pp fmt test] prints XPath surface syntax. *)
val pp : Format.formatter -> t -> unit
