(** Loop-lifted XPath steps over sequence tables.

    A step takes the [iter|pos|item] table of context nodes (as left by
    the previous step or FLWOR binding) and produces the result table,
    duplicate-free and in document order per iteration.  Contexts that
    span several documents are partitioned per document first — steps
    never match across fragments. *)

(** Raised when a context item is not a node. *)
exception Not_a_node of Standoff_relalg.Item.t

(** [axis_step coll axis ~test context] evaluates a standard axis step.
    Attribute items in the context contribute only to the [Parent]
    axis (their owner element); they have no descendants or
    siblings. *)
val axis_step :
  Standoff_store.Collection.t ->
  Axes.axis ->
  test:Node_test.t ->
  Standoff_relalg.Table.t ->
  Standoff_relalg.Table.t

(** [attribute_step coll ~test context] evaluates [attribute::test],
    producing [Attribute] items in attribute-name order per owner. *)
val attribute_step :
  Standoff_store.Collection.t ->
  test:Node_test.t ->
  Standoff_relalg.Table.t ->
  Standoff_relalg.Table.t
