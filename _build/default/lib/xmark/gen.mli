(** Deterministic XMark auction-site document generator.

    Replaces the original xmlgen tool (Schmidt et al., VLDB 2002) as
    the workload source of the paper's evaluation (§4.6).  The schema —
    [site]/[regions]/[item], [categories], [catgraph], [people]/
    [person], [open_auctions]/[open_auction]/[bidder],
    [closed_auctions] — and the relative entity cardinalities follow
    XMark; sizes scale linearly in the scale factor exactly as xmlgen's
    do ([scale = 1.0] is the paper's 110 MB document, [0.1] the 11 MB
    one). *)

type params = {
  scale : float;   (** XMark scale factor; > 0 *)
  seed : int64;    (** generator seed; equal seeds, equal documents *)
}

(** Entity counts for a scale factor (before the minimum of 1 per
    entity kind is applied). *)
type counts = {
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

(** [counts_for scale] is the XMark cardinality table scaled
    linearly. *)
val counts_for : float -> counts

(** [generate params] builds the document. *)
val generate : params -> Standoff_xml.Dom.document

(** [approximate_size_bytes scale] estimates the serialized size, used
    by the benchmark harness to label series like the paper's
    "11MB … 1100MB". *)
val approximate_size_bytes : float -> int
