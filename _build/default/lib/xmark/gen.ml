module Dom = Standoff_xml.Dom
module Prng = Standoff_util.Prng

type params = {
  scale : float;
  seed : int64;
}

type counts = {
  items : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

(* XMark cardinalities at scale factor 1. *)
let counts_for scale =
  let n base = max 1 (int_of_float (Float.round (float_of_int base *. scale))) in
  {
    items = n 21750;
    persons = n 25500;
    open_auctions = n 12000;
    closed_auctions = n 9750;
    categories = n 1000;
  }

let el = Dom.element
let text s = Dom.Text s

let sentence rng ~min_words ~max_words =
  let n = Prng.int_in_range rng min_words max_words in
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.choice rng Vocab.words)
  done;
  Buffer.contents buf

let person_name rng =
  Prng.choice rng Vocab.first_names ^ " " ^ Prng.choice rng Vocab.last_names

let date rng =
  Printf.sprintf "%02d/%02d/%4d"
    (Prng.int_in_range rng 1 12)
    (Prng.int_in_range rng 1 28)
    (Prng.int_in_range rng 1998 2001)

let time rng =
  Printf.sprintf "%02d:%02d:%02d"
    (Prng.int_in_range rng 0 23)
    (Prng.int_in_range rng 0 59)
    (Prng.int_in_range rng 0 59)

let money rng hi = Printf.sprintf "%d.%02d" (Prng.int_in_range rng 1 hi) (Prng.int rng 100)

(* <text> mixes words with occasional <keyword>/<bold> children, like
   xmlgen's description bodies. *)
let rich_text rng =
  let parts = ref [] in
  let n = Prng.int_in_range rng 1 3 in
  for _ = 1 to n do
    parts := text (sentence rng ~min_words:6 ~max_words:24) :: !parts;
    if Prng.int rng 3 = 0 then
      parts :=
        el
          (if Prng.bool rng then "keyword" else "bold")
          [ text (sentence rng ~min_words:1 ~max_words:3) ]
        :: !parts
  done;
  el "text" (List.rev !parts)

let description rng = el "description" [ rich_text rng ]

let mail rng =
  el "mail"
    [
      el "from" [ text (person_name rng) ];
      el "to" [ text (person_name rng) ];
      el "date" [ text (date rng) ];
      rich_text rng;
    ]

let item rng c ~id =
  let incategories =
    List.init
      (Prng.int_in_range rng 1 3)
      (fun _ ->
        el "incategory"
          ~attrs:[ ("category", Printf.sprintf "category%d" (Prng.int rng c.categories)) ]
          [])
  in
  let mailbox =
    el "mailbox" (List.init (Prng.int rng 3) (fun _ -> mail rng))
  in
  el "item"
    ~attrs:[ ("id", Printf.sprintf "item%d" id); ("featured", if Prng.int rng 10 = 0 then "yes" else "no") ]
    ([
       el "location" [ text (Prng.choice rng Vocab.countries) ];
       el "quantity" [ text (string_of_int (Prng.int_in_range rng 1 5)) ];
       el "name" [ text (sentence rng ~min_words:2 ~max_words:4) ];
       el "payment" [ text "Creditcard" ];
       description rng;
       el "shipping" [ text "Will ship internationally" ];
     ]
    @ incategories
    @ [ mailbox ])

let category rng ~id =
  el "category"
    ~attrs:[ ("id", Printf.sprintf "category%d" id) ]
    [ el "name" [ text (sentence rng ~min_words:1 ~max_words:3) ]; description rng ]

let person rng c ~id =
  let optional p node = if Prng.int rng 100 < p then [ node () ] else [] in
  el "person"
    ~attrs:[ ("id", Printf.sprintf "person%d" id) ]
    ([
       el "name" [ text (person_name rng) ];
       el "emailaddress"
         [ text (Printf.sprintf "mailto:person%d@auction.example" id) ];
     ]
    @ optional 60 (fun () ->
          el "phone" [ text (Printf.sprintf "+31 %07d" (Prng.int rng 10000000)) ])
    @ optional 70 (fun () ->
          el "address"
            [
              el "street" [ text (Printf.sprintf "%d %s St" (Prng.int_in_range rng 1 99) (Prng.choice rng Vocab.words)) ];
              el "city" [ text (Prng.choice rng Vocab.cities) ];
              el "country" [ text (Prng.choice rng Vocab.countries) ];
              el "zipcode" [ text (string_of_int (Prng.int rng 100000)) ];
            ])
    @ optional 50 (fun () ->
          el "homepage"
            [ text (Printf.sprintf "http://www.example.org/~person%d" id) ])
    @ optional 60 (fun () ->
          el "creditcard"
            [
              text
                (Printf.sprintf "%04d %04d %04d %04d" (Prng.int rng 10000)
                   (Prng.int rng 10000) (Prng.int rng 10000) (Prng.int rng 10000));
            ])
    @ optional 70 (fun () ->
          el "profile"
            ~attrs:[ ("income", money rng 99999) ]
            (List.init
               (Prng.int rng 3)
               (fun _ ->
                 el "interest"
                   ~attrs:
                     [ ("category", Printf.sprintf "category%d" (Prng.int rng c.categories)) ]
                   [])
            @ [
                el "education" [ text (Prng.choice rng Vocab.education_levels) ];
                el "gender" [ text (if Prng.bool rng then "male" else "female") ];
                el "business" [ text (if Prng.bool rng then "Yes" else "No") ];
                el "age" [ text (string_of_int (Prng.int_in_range rng 18 90)) ];
              ]))
    @ optional 40 (fun () ->
          el "watches"
            (List.init
               (Prng.int_in_range rng 1 3)
               (fun _ ->
                 el "watch"
                   ~attrs:
                     [
                       ( "open_auction",
                         Printf.sprintf "open_auction%d"
                           (Prng.int rng c.open_auctions) );
                     ]
                   []))))

let bidder rng c =
  el "bidder"
    [
      el "date" [ text (date rng) ];
      el "time" [ text (time rng) ];
      el "personref"
        ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
        [];
      el "increase" [ text (money rng 50) ];
    ]

let open_auction rng c ~id =
  let bidders = List.init (Prng.int rng 6) (fun _ -> bidder rng c) in
  el "open_auction"
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" id) ]
    ([
       el "initial" [ text (money rng 200) ];
       el "reserve" [ text (money rng 400) ];
     ]
    @ bidders
    @ [
        el "current" [ text (money rng 600) ];
        el "privacy" [ text (if Prng.bool rng then "Yes" else "No") ];
        el "itemref"
          ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng c.items)) ]
          [];
        el "seller"
          ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
          [];
        el "annotation"
          [
            el "author"
              ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
              [];
            description rng;
            el "happiness" [ text (string_of_int (Prng.int_in_range rng 1 10)) ];
          ];
        el "quantity" [ text (string_of_int (Prng.int_in_range rng 1 5)) ];
        el "type" [ text (Prng.choice rng Vocab.auction_types) ];
        el "interval"
          [ el "start" [ text (date rng) ]; el "end" [ text (date rng) ] ];
      ])

let closed_auction rng c =
  el "closed_auction"
    [
      el "seller"
        ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
        [];
      el "buyer"
        ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
        [];
      el "itemref"
        ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng c.items)) ]
        [];
      el "price" [ text (money rng 600) ];
      el "date" [ text (date rng) ];
      el "quantity" [ text (string_of_int (Prng.int_in_range rng 1 5)) ];
      el "type" [ text (Prng.choice rng Vocab.auction_types) ];
      el "annotation"
        [
          el "author"
            ~attrs:[ ("person", Printf.sprintf "person%d" (Prng.int rng c.persons)) ]
            [];
          description rng;
          el "happiness" [ text (string_of_int (Prng.int_in_range rng 1 10)) ];
        ];
    ]

let generate { scale; seed } =
  if scale <= 0.0 then invalid_arg "Xmark.Gen.generate: scale must be positive";
  let c = counts_for scale in
  let rng = Prng.create seed in
  (* Independent streams per section, so a section's content does not
     depend on how many entities precede it. *)
  let rng_regions = Prng.split rng in
  let rng_categories = Prng.split rng in
  let rng_people = Prng.split rng in
  let rng_open = Prng.split rng in
  let rng_closed = Prng.split rng in
  let region_elems =
    let n_regions = Array.length Vocab.regions in
    let per_region = Array.make n_regions 0 in
    for i = 0 to c.items - 1 do
      per_region.(i mod n_regions) <- per_region.(i mod n_regions) + 1
    done;
    let next_id = ref 0 in
    Array.to_list
      (Array.mapi
         (fun r name ->
           let items =
             List.init per_region.(r) (fun _ ->
                 let id = !next_id in
                 incr next_id;
                 item rng_regions c ~id)
           in
           el name items)
         Vocab.regions)
  in
  let categories =
    List.init c.categories (fun id -> category rng_categories ~id)
  in
  let catgraph =
    List.init
      (max 1 (c.categories / 2))
      (fun _ ->
        el "edge"
          ~attrs:
            [
              ("from", Printf.sprintf "category%d" (Prng.int rng_categories c.categories));
              ("to", Printf.sprintf "category%d" (Prng.int rng_categories c.categories));
            ]
          [])
  in
  let people = List.init c.persons (fun id -> person rng_people c ~id) in
  let opens = List.init c.open_auctions (fun id -> open_auction rng_open c ~id) in
  let closeds = List.init c.closed_auctions (fun _ -> closed_auction rng_closed c) in
  Dom.document
    (el "site"
       [
         el "regions" region_elems;
         el "categories" categories;
         el "catgraph" catgraph;
         el "people" people;
         el "open_auctions" opens;
         el "closed_auctions" closeds;
       ])

let approximate_size_bytes scale = int_of_float (110_000_000.0 *. scale)
