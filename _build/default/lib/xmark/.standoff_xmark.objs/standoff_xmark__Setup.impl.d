lib/xmark/setup.ml: Gen Printf Standoff_store Standoff_xml Standoff_xquery Standoffify String
