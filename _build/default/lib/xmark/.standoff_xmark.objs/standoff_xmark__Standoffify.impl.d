lib/xmark/standoffify.ml: Array Buffer List Standoff_util Standoff_xml
