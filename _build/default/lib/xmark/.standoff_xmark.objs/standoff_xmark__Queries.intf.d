lib/xmark/queries.mli:
