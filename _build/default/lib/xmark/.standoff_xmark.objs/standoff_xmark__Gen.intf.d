lib/xmark/gen.mli: Standoff_xml
