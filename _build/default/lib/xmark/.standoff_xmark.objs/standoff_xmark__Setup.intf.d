lib/xmark/setup.mli: Standoff_store Standoff_xquery
