lib/xmark/vocab.ml:
