lib/xmark/gen.ml: Array Buffer Float List Printf Standoff_util Standoff_xml Vocab
