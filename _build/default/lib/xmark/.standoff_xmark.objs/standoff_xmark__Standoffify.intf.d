lib/xmark/standoffify.mli: Standoff_xml
