(** Word material for the XMark generator.

    The original xmlgen fills text with Shakespeare vocabulary; any
    fixed word pool with a similar size distribution preserves what the
    benchmark queries observe (element counts and text volume), which
    is all Figure 6 depends on. *)

let words =
  [|
    "gold"; "silver"; "ancient"; "painting"; "vintage"; "rare"; "antique";
    "ivory"; "marble"; "bronze"; "portrait"; "landscape"; "signed"; "first";
    "edition"; "manuscript"; "ceramic"; "porcelain"; "jade"; "amber";
    "carved"; "engraved"; "restored"; "original"; "authentic"; "certified";
    "museum"; "quality"; "estate"; "collection"; "private"; "auction";
    "reserve"; "bidding"; "shipping"; "worldwide"; "insured"; "tracked";
    "condition"; "excellent"; "mint"; "fine"; "good"; "fair"; "damaged";
    "repaired"; "century"; "dynasty"; "period"; "style"; "school"; "master";
    "workshop"; "attributed"; "circle"; "follower"; "after"; "unknown";
    "artist"; "maker"; "silk"; "linen"; "canvas"; "panel"; "paper"; "velvet";
    "oak"; "walnut"; "mahogany"; "ebony"; "gilt"; "lacquer"; "enamel";
    "crystal"; "glass"; "pearl"; "diamond"; "ruby"; "emerald"; "sapphire";
    "watch"; "clock"; "jewel"; "ring"; "brooch"; "necklace"; "pendant";
    "coin"; "medal"; "stamp"; "map"; "globe"; "telescope"; "compass";
    "sextant"; "model"; "ship"; "train"; "carriage"; "armour"; "sword";
  |]

let first_names =
  [|
    "Ada"; "Alan"; "Barbara"; "Claude"; "Donald"; "Edsger"; "Frances";
    "Grace"; "Hedy"; "John"; "Katherine"; "Kurt"; "Leslie"; "Margaret";
    "Niklaus"; "Peter"; "Radia"; "Robin"; "Tim"; "Wouter"; "Arjen";
    "Raoul"; "Maurice"; "Rosalind"; "Sophie"; "Vera";
  |]

let last_names =
  [|
    "Lovelace"; "Turing"; "Liskov"; "Shannon"; "Knuth"; "Dijkstra";
    "Allen"; "Hopper"; "Lamarr"; "Backus"; "Johnson"; "Goedel"; "Lamport";
    "Hamilton"; "Wirth"; "Naur"; "Perlman"; "Milner"; "Berners-Lee";
    "Alink"; "Vries"; "Boncz"; "Wilkes"; "Franklin"; "Germain"; "Rubin";
  |]

let cities =
  [|
    "Amsterdam"; "The Hague"; "Chicago"; "Toronto"; "Twente"; "Paris";
    "Berlin"; "Kyoto"; "Nairobi"; "Lima"; "Sydney"; "Mumbai"; "Cairo";
    "Oslo"; "Porto"; "Quebec";
  |]

let countries =
  [|
    "Netherlands"; "United States"; "Canada"; "France"; "Germany"; "Japan";
    "Kenya"; "Peru"; "Australia"; "India"; "Egypt"; "Norway"; "Portugal";
  |]

let regions =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let education_levels =
  [| "High School"; "College"; "Graduate School"; "Other" |]

let auction_types = [| "Regular"; "Featured" |]
