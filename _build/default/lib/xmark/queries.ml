type query = {
  id : string;
  description : string;
  standard : string -> string;
  standoff : string -> string;
}

let q1 =
  {
    id = "Q1";
    description = "Return the name of the person with ID person0";
    standard =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")/site/people/person[@id = \"person0\"]\n\
           return $b/name/text()"
          doc);
    standoff =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")//site/select-narrow::people\n\
          \    /select-narrow::person[@id = \"person0\"]\n\
           return $b/select-narrow::name"
          doc);
  }

(* Figure 5 of the paper. *)
let q2 =
  {
    id = "Q2";
    description = "Return the initial increases of all open auctions";
    standard =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")/site/open_auctions/open_auction\n\
           return <increase>{$b/bidder[1]/increase/text()}</increase>"
          doc);
    standoff =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")//site/select-narrow::open_auctions\n\
          \    /select-narrow::open_auction\n\
           return <increase>{\n\
          \  $b/select-narrow::bidder[1]/select-narrow::increase\n\
           }</increase>"
          doc);
  }

let q6 =
  {
    id = "Q6";
    description = "How many items are listed on all continents?";
    standard =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")//site/regions return count($b//item)" doc);
    standoff =
      (fun doc ->
        Printf.sprintf
          "for $b in doc(\"%s\")//site/select-narrow::regions\n\
           return count($b/select-narrow::item)"
          doc);
  }

let q7 =
  {
    id = "Q7";
    description = "How many pieces of prose are in our database?";
    standard =
      (fun doc ->
        Printf.sprintf
          "for $p in doc(\"%s\")/site\n\
           return count($p//description) + count($p//annotation) + \
           count($p//emailaddress)"
          doc);
    standoff =
      (fun doc ->
        Printf.sprintf
          "for $p in doc(\"%s\")//site\n\
           return count($p/select-narrow::description)\n\
          \     + count($p/select-narrow::annotation)\n\
          \     + count($p/select-narrow::emailaddress)"
          doc);
  }

let all = [ q1; q2; q6; q7 ]

type extended_query = {
  ext_id : string;
  ext_description : string;
  ext_standard : string -> string;
}

let extended =
  [
    {
      ext_id = "Q3";
      ext_description =
        "Auctions where the first bid doubled within the bid history";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "for $b in doc(\"%s\")/site/open_auctions/open_auction\n\
             where count($b/bidder) > 0 and \
             $b/bidder[1]/increase * 2 <= $b/bidder[last()]/increase\n\
             return <increase first=\"{$b/bidder[1]/increase}\" \
             last=\"{$b/bidder[last()]/increase}\"/>"
            doc);
    };
    {
      ext_id = "Q5";
      ext_description = "How many sold items cost more than 40?";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "count(for $i in doc(\"%s\")/site/closed_auctions/closed_auction\n\
             where $i/price >= 40 return $i/price)"
            doc);
    };
    {
      ext_id = "Q8";
      ext_description = "How many items did each person buy? (value join)";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "for $p in doc(\"%s\")/site/people/person\n\
             let $a := for $t in doc(\"%s\")/site/closed_auctions/closed_auction\n\
            \          where $t/buyer/@person = $p/@id return $t\n\
             return <item person=\"{$p/name}\">{count($a)}</item>"
            doc doc);
    };
    {
      ext_id = "Q14";
      ext_description = "Items whose description mentions 'gold'";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "for $i in doc(\"%s\")//item\n\
             where contains(string($i/description), \"gold\")\n\
             return $i/name/text()"
            doc);
    };
    {
      ext_id = "Q17";
      ext_description = "Which persons do not have a homepage?";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "for $p in doc(\"%s\")/site/people/person\n\
             where empty($p/homepage)\n\
             return <person name=\"{$p/name}\"/>"
            doc);
    };
    {
      ext_id = "Q20";
      ext_description = "Income distribution of the customers";
      ext_standard =
        (fun doc ->
          Printf.sprintf
            "let $people := doc(\"%s\")/site/people/person\n\
             return <result>\n\
             <high>{count($people[profile/@income >= 60000])}</high>\n\
             <standard>{count($people[profile/@income < 60000])}</standard>\n\
             <unknown>{count($people[empty(profile/@income)])}</unknown>\n\
             </result>"
            doc);
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find (fun q -> String.equal q.id id) all
