(** The StandOff transformation of §4.6.

    Turns an ordinary XML document into a stand-off annotation document
    plus a BLOB:

    - the textual content moves to the BLOB, in document order;
    - every element receives [start]/[end] attributes covering the
      byte extent its text occupied (elements without own text consume
      one separator byte, so every region is non-degenerate);
    - text nodes are dropped from the annotation document;
    - the element nodes are {e permuted on a coarse level}: the
      subtrees two levels below the root (items, persons, auctions,
      categories) are shuffled and redistributed across the top-level
      sections, destroying parent-child relationships — after the
      transformation only the regions relate the annotations, so
      [child]/[descendant] steps give wrong answers and the queries
      must use [select-narrow] (the paper's point). *)

type result = {
  doc : Standoff_xml.Dom.document;  (** the annotation document *)
  blob : string;                    (** the extracted content *)
}

(** [transform ?seed ?permute dom] runs the transformation.  [permute]
    (default [true]) controls the coarse permutation; [seed] (default
    [42L]) drives it deterministically. *)
val transform :
  ?seed:int64 -> ?permute:bool -> Standoff_xml.Dom.document -> result
