module Dom = Standoff_xml.Dom
module Prng = Standoff_util.Prng

type result = {
  doc : Dom.document;
  blob : string;
}

(* Pass 1: move text into the blob and annotate extents.  Each element
   is guaranteed a non-empty region: if its subtree contributed no
   bytes, one separator byte is emitted on its behalf. *)
let rec annotate buf node =
  match node with
  | Dom.Text s ->
      Buffer.add_string buf s;
      None
  | Dom.Comment _ | Dom.Pi _ -> Some node
  | Dom.Element e ->
      let start = Buffer.length buf in
      let children = List.filter_map (annotate buf) e.Dom.children in
      if Buffer.length buf = start then Buffer.add_char buf '\n';
      let stop = Buffer.length buf - 1 in
      let e =
        Dom.with_attr
          (Dom.with_attr { e with Dom.children } "start" (string_of_int start))
          "end" (string_of_int stop)
      in
      Some (Dom.Element e)

(* Pass 2: coarse permutation.  The grandchildren of the root (the
   entity subtrees) are collected, shuffled, and dealt back across the
   root's children, so most entities end up under a different section
   element than in the original tree. *)
let permute_coarse ~seed root =
  let rng = Prng.create seed in
  let sections = root.Dom.children in
  let entities =
    List.concat_map
      (function
        | Dom.Element s -> s.Dom.children
        | (Dom.Text _ | Dom.Comment _ | Dom.Pi _) as other -> [ other ])
      sections
  in
  let shuffled = Array.of_list entities in
  Prng.shuffle rng shuffled;
  let n_sections =
    List.length
      (List.filter (function Dom.Element _ -> true | _ -> false) sections)
  in
  if n_sections = 0 then root
  else begin
    let buckets = Array.make n_sections [] in
    Array.iteri
      (fun i entity -> buckets.(i mod n_sections) <- entity :: buckets.(i mod n_sections))
      shuffled;
    let idx = ref 0 in
    let children =
      List.map
        (fun section ->
          match section with
          | Dom.Element s ->
              let mine = List.rev buckets.(!idx) in
              incr idx;
              Dom.Element { s with Dom.children = mine }
          | other -> other)
        sections
    in
    { root with Dom.children }
  end

let transform ?(seed = 42L) ?(permute = true) (dom : Dom.document) =
  let buf = Buffer.create 65536 in
  let annotated =
    match annotate buf (Dom.Element dom.Dom.root) with
    | Some (Dom.Element root) -> root
    | Some _ | None -> assert false
  in
  let root = if permute then permute_coarse ~seed annotated else annotated in
  { doc = { dom with Dom.root }; blob = Buffer.contents buf }
