(** The XMark queries of the paper's evaluation (§4.6): Q1, Q2, Q6 and
    Q7, each in the original form (child/descendant steps, for the
    un-transformed document) and in the StandOff form of Figure 5
    (steps replaced by [select-narrow::], for the transformed
    document). *)

type query = {
  id : string;          (** "Q1" … "Q7" *)
  description : string; (** what the query asks, from the XMark suite *)
  standard : string -> string;
      (** standard form, parameterized by document name *)
  standoff : string -> string;
      (** StandOff form, parameterized by document name *)
}

(** [q1], [q2], [q6], [q7] — the four queries of Figure 6. *)
val q1 : query

val q2 : query
val q6 : query
val q7 : query

(** [all] in paper order. *)
val all : query list

(** [find id] looks a query up by its id (case-insensitive).
    @raise Not_found on unknown ids. *)
val find : string -> query

(** Further XMark queries in their original (tree-step) form — not part
    of the paper's evaluation, but useful for exercising the engine on
    the standard document: positional comparisons (Q3), value
    predicates (Q5), value joins (Q8), full-text-ish filters (Q14),
    existence tests (Q17) and aggregation (Q20). *)
type extended_query = {
  ext_id : string;
  ext_description : string;
  ext_standard : string -> string;
}

val extended : extended_query list
