type t =
  | Select_narrow
  | Select_wide
  | Reject_narrow
  | Reject_wide

let all = [ Select_narrow; Select_wide; Reject_narrow; Reject_wide ]

let of_string_opt = function
  | "select-narrow" -> Some Select_narrow
  | "select-wide" -> Some Select_wide
  | "reject-narrow" -> Some Reject_narrow
  | "reject-wide" -> Some Reject_wide
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "Op.of_string: %S" s)

let to_string = function
  | Select_narrow -> "select-narrow"
  | Select_wide -> "select-wide"
  | Reject_narrow -> "reject-narrow"
  | Reject_wide -> "reject-wide"

let is_select = function
  | Select_narrow | Select_wide -> true
  | Reject_narrow | Reject_wide -> false

let is_narrow = function
  | Select_narrow | Reject_narrow -> true
  | Select_wide | Reject_wide -> false

let select_of = function
  | Select_narrow | Reject_narrow -> Select_narrow
  | Select_wide | Reject_wide -> Select_wide

let pp fmt op = Format.pp_print_string fmt (to_string op)
