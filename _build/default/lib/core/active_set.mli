(** The set of active context regions maintained by the StandOff merge
    joins, with two interchangeable implementations.

    The sweep needs three operations:
    - [add]: a context region becomes active (subject to the
      single-region per-iteration skip/replace refinements);
    - [trim]: retire regions ending before the sweep position;
    - [iter_end_ge]: visit every active region whose end reaches a
      threshold (the result-emitting scan).

    {b Sorted_list} is the paper's published structure (§4.5, §5): a
    list sorted on [end] descending, trimmed at the tail, with
    deletions possibly in the middle — O(n) worst-case per insertion.

    {b Lazy_heap} is the paper's suggested improvement ("it could be
    beneficial to substitute the stack … by a heap, in
    data-distributions that cause it to grow long"): a max-heap on
    [end] with lazy invalidation backed by the per-iteration table, so
    insertion is O(log n) and the emitting scan visits only the heap's
    qualifying top portion.  Available in single-region mode (where the
    per-iteration table pins the one live region per iteration).

    Both implementations produce identical match sets; the ablation
    benchmark ([bench/main.exe active-set]) shows where they part on
    adversarial overlap distributions. *)

type kind =
  | Sorted_list
  | Lazy_heap

(** [kind_of_string s] parses ["list" | "heap"].
    @raise Invalid_argument otherwise. *)
val kind_of_string : string -> kind

val kind_to_string : kind -> string

type t

(** Trace callbacks, forwarded to the merge join's trace hook. *)
type callbacks = {
  on_add : iter:int -> ctx:int -> unit;
  on_skip : iter:int -> ctx:int -> unit;
  on_replace : iter:int -> removed:int -> by:int -> unit;
  on_trim : iter:int -> ctx:int -> unit;
}

val no_callbacks : callbacks

(** [create kind ~single_region ~callbacks] — [Lazy_heap] requires
    [single_region].
    @raise Invalid_argument on [Lazy_heap] in multi-region mode. *)
val create : kind -> single_region:bool -> callbacks:callbacks -> t

(** [size t] is the number of live active regions. *)
val size : t -> int

(** [add t ~iter ~ctx ~end_] activates a context region.  In
    single-region mode a region covered by its iteration's live region
    is skipped, and a region reaching further replaces it. *)
val add : t -> iter:int -> ctx:int -> end_:int64 -> unit

(** [trim t ~start] retires every region with [end < start]. *)
val trim : t -> start:int64 -> unit

(** [iter_end_ge t threshold f] applies [f ~iter ~ctx] to every live
    region with [end >= threshold].  Visit order is unspecified (the
    joins sort matches afterwards); [Sorted_list] happens to visit in
    descending end order, which the Figure 4 trace relies on. *)
val iter_end_ge : t -> int64 -> (iter:int -> ctx:int -> unit) -> unit

(** [iter_all t f] applies [f] to every live region (the overlap sweep
    emits against all active regions). *)
val iter_all : t -> (iter:int -> ctx:int -> unit) -> unit

(** [covered t ~iter ~end_] — single-region mode: does the iteration's
    live region already reach [end_]?  (Exposed for the wide sweep's
    skip decision.)  Always [false] in multi-region mode. *)
val covered : t -> iter:int -> end_:int64 -> bool
