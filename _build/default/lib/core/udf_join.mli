(** The user-defined-function baselines (paper Figures 2 and 3).

    These mirror the nested-loop plans an XQuery engine produces for
    the library-module implementation of the StandOff operators:

    - {e without} a candidate sequence (Figure 2), every context
      annotation is compared against {e every} area-annotation of the
      document ([for $p in root($q)//*]);
    - {e with} a candidate sequence (Figure 3), the inner loop runs
      over the candidates only (selection pushed down by hand).

    Either way the cost is quadratic, which is exactly the behaviour
    the paper's evaluation attributes to them.  Both honour the
    area-level (multi-region) semantics so that every strategy agrees
    on results.

    All functions take a {!Standoff_util.Timing.deadline} and poll it,
    so the benchmark harness can declare DNF. *)

(** [join op annots ~deadline ~context ~candidates] evaluates one
    operator for one context sequence.  [candidates = None] is the
    Figure 2 shape (all area-annotations of the document).  Returns
    sorted, duplicate-free pres.
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val join :
  Op.t ->
  Annots.t ->
  deadline:Standoff_util.Timing.deadline ->
  context:int array ->
  candidates:int array option ->
  int array
