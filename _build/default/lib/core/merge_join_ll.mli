(** Loop-lifted StandOff MergeJoin (paper §4.5, Listing 1).

    One sweep over the [start]-clustered region index evaluates a
    StandOff semi-join for {e all} iterations of the enclosing for-loop
    at once.  The algorithm keeps a list of {e active} context regions
    sorted on their [end] value (descending); a context region is
    active while it can still produce results for the current sweep
    position.

    Two refinements from the paper are applied per iteration in
    single-region mode:
    - {e skip} (Listing 1 lines 11–18): an arriving context region
      already covered by the same iteration's active region (its end
      does not extend past it) is not added — it could only produce
      duplicate results;
    - {e replace} (line 41): an arriving context region whose end
      extends past the same iteration's active region supersedes it —
      every future candidate the old region contains, the new one
      contains too (candidates arrive in non-decreasing [start]).

    Together these keep {e at most one active region per iteration},
    so the active list length is bounded by the number of concurrently
    live iterations.  Note a deliberate deviation from the printed
    pseudo-code: Listing 1's skip test compares against the {e most
    recently added} context item regardless of its iteration (the
    Figure 4 trace skips iter-1's [c3 = \[20,30\]] because iter-2's
    [c2 = \[12,35\]] covers it).  Applied across iterations that test
    loses results — with the same context, a candidate [\[22,28\]]
    is contained in [c3] and must be reported for iteration 1, which
    cannot happen once [c3] is dropped.  This implementation therefore
    skips/replaces within one iteration only; on the Figure 4 input it
    produces exactly the paper's result set.

    In multi-region (element-representation) mode the skip/replace
    refinements are disabled and matches carry the context annotation
    id, so the post-processing in {!Join} can verify that {e every}
    region of a candidate is covered by the {e same} context
    annotation (the paper's [contains(a1,a2)], §3.1). *)

type context = private {
  iters : int array;
  ids : int array;
  starts : int64 array;
  ends : int64 array;
}
(** One row per context {e region} (areas contribute several rows),
    sorted on [(start asc, end desc)]. *)

(** [context_of_annotations annots ~iters ~pres] looks up the area of
    each [(iter, pre)] context node — nodes that are not
    area-annotations are dropped — and produces the sorted region
    rows. *)
val context_of_annotations :
  Annots.t -> iters:int array -> pres:int array -> context

(** [context_row_count c] is the number of region rows. *)
val context_row_count : context -> int

type match_row = {
  m_iter : int;
  m_ctx : int;   (** context annotation id (pre) *)
  m_cand : int;  (** candidate annotation id (pre) *)
  m_rank : int;  (** which region of the candidate area matched *)
}

(** Trace events, mirroring the line numbers of Listing 1; used by the
    Figure 4 execution-trace test and by [--trace] debugging in the
    CLI. *)
type trace_event =
  | Add_active of { iter : int; ctx : int }      (** line 41 *)
  | Skip_covered of { iter : int; ctx : int }    (** lines 11–18 *)
  | Replace_active of { iter : int; removed : int; by : int }  (** line 41 *)
  | Trim_active of { iter : int; ctx : int }     (** lines 29–31 *)
  | Emit of { iter : int; ctx : int; cand : int } (** lines 32–34 *)
  | Skip_candidates of { from_row : int; to_row : int }  (** lines 21–24 *)

(** [select_narrow ?active_set ?trace ?deadline ~single_region context
    candidates] emits one {!match_row} per (active context region,
    contained candidate region) pair.  With [single_region] the
    per-iteration skip/replace refinements are on and each
    [(iter, cand)] is emitted at most once.  [active_set] selects the
    active-set structure (default: the paper's sorted list; see
    {!Active_set}).
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val select_narrow :
  ?active_set:Active_set.kind ->
  ?trace:(trace_event -> unit) ->
  ?deadline:Standoff_util.Timing.deadline ->
  single_region:bool ->
  context ->
  Region_index.t ->
  match_row Standoff_util.Vec.t

(** [select_wide ?active_set ?trace ?deadline ~single_region context
    candidates] is the overlap semi-join sweep.  In addition to the
    active set it keeps {e pending} candidates — candidates whose
    region extends past the sweep position and that later-starting
    context regions may still overlap.  Matches may be emitted more
    than once per [(iter, cand)]; {!Join} deduplicates. *)
val select_wide :
  ?active_set:Active_set.kind ->
  ?trace:(trace_event -> unit) ->
  ?deadline:Standoff_util.Timing.deadline ->
  single_region:bool ->
  context ->
  Region_index.t ->
  match_row Standoff_util.Vec.t
