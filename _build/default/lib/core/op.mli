(** The four StandOff joins (paper §3.1), proposed as XPath axis
    steps. *)

type t =
  | Select_narrow  (** containment semi-join *)
  | Select_wide    (** overlap semi-join *)
  | Reject_narrow  (** containment anti-join *)
  | Reject_wide    (** overlap anti-join *)

(** [all] lists the four operators. *)
val all : t list

(** [of_string s] parses the axis name, e.g. ["select-narrow"].
    @raise Invalid_argument on unknown names. *)
val of_string : string -> t

(** [of_string_opt s] is the non-raising variant. *)
val of_string_opt : string -> t option

(** [to_string op] is the axis name. *)
val to_string : t -> string

(** [is_select op] holds for the two semi-joins. *)
val is_select : t -> bool

(** [is_narrow op] holds for the two containment joins. *)
val is_narrow : t -> bool

(** [select_of op] is the semi-join with the same containment/overlap
    semantics as [op] — the anti-joins are per-iteration complements of
    their select counterparts. *)
val select_of : t -> t

val pp : Format.formatter -> t -> unit
