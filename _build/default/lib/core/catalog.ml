type entry = {
  config : Config.t;
  annots : Annots.t;
}

type t = (string, entry list ref) Hashtbl.t
(* Keyed on document name, which collections keep unique; the handful
   of configurations per document live in a short list. *)

let create () : t = Hashtbl.create 8

let annots cat config doc =
  let key = doc.Standoff_store.Doc.doc_name in
  let entries =
    match Hashtbl.find_opt cat key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add cat key r;
        r
  in
  match
    List.find_opt
      (fun e -> Config.equal e.config config && e.annots.Annots.doc == doc)
      !entries
  with
  | Some e -> e.annots
  | None ->
      let a = Annots.extract config doc in
      entries := { config; annots = a } :: !entries;
      a

let invalidate cat doc = Hashtbl.remove cat doc.Standoff_store.Doc.doc_name
