module Vec = Standoff_util.Vec
module Area = Standoff_interval.Area

let area_matches op ~context ~candidate =
  let holds pred = List.exists (fun a1 -> pred a1 candidate) context in
  match op with
  | Op.Select_narrow -> holds Area.contains
  | Op.Select_wide -> holds Area.overlaps
  | Op.Reject_narrow -> not (holds Area.contains)
  | Op.Reject_wide -> not (holds Area.overlaps)

let annotation_areas annots pres =
  Array.to_list pres
  |> List.filter_map (fun pre ->
         Option.map (fun a -> (pre, a)) (Annots.area_of annots pre))

let join op annots ~context ~candidates =
  let context_areas = List.map snd (annotation_areas annots context) in
  let out = Vec.create () in
  List.iter
    (fun (pre, candidate) ->
      if area_matches op ~context:context_areas ~candidate then
        Vec.push out pre)
    (annotation_areas annots candidates);
  let arr = Vec.to_array out in
  Array.sort compare arr;
  let dedup = Vec.create () in
  Array.iteri
    (fun i pre -> if i = 0 || arr.(i - 1) <> pre then Vec.push dedup pre)
    arr;
  Vec.to_array dedup
