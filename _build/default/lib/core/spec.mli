(** Executable formal semantics of the StandOff joins (paper §3.1) —
    the O(|S1|·|S2|) oracle against which every optimised
    implementation is tested.

    [select-narrow(S1,S2)] = annotations of [S2] contained by some
    annotation of [S1]; [select-wide] replaces containment with
    overlap; the [reject-*] operators are the complements within
    [S2]. *)

(** [area_matches op ~context ~candidate] decides whether [candidate]
    belongs to the result of [op] given the full context area list
    (for the reject operators this consults {e all} context areas). *)
val area_matches :
  Op.t ->
  context:Standoff_interval.Area.t list ->
  candidate:Standoff_interval.Area.t ->
  bool

(** [join op annots ~context ~candidates] evaluates [op] between node
    sequences of one document.  [context] and [candidates] are pre
    arrays (any order, duplicates allowed); nodes that are not
    area-annotations are ignored on both sides, as the joins are
    defined between area-annotations only.  The result is sorted and
    duplicate-free (document order). *)
val join :
  Op.t ->
  Annots.t ->
  context:int array ->
  candidates:int array ->
  int array
