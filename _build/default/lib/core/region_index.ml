module Vec = Standoff_util.Vec
module Search = Standoff_util.Search
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area

type t = {
  starts : int64 array;
  ends : int64 array;
  ids : int array;
  region_ranks : int array;
}

type row = {
  row_start : int64;
  row_end : int64;
  row_id : int;
  row_rank : int;
}

let compare_row a b =
  let c = Int64.compare a.row_start b.row_start in
  if c <> 0 then c
  else
    let c = Int64.compare b.row_end a.row_end in
    if c <> 0 then c else compare a.row_id b.row_id

let build annots =
  let rows = Vec.create () in
  List.iter
    (fun (id, area) ->
      List.iteri
        (fun rank r ->
          Vec.push rows
            {
              row_start = Region.start_pos r;
              row_end = Region.end_pos r;
              row_id = id;
              row_rank = rank;
            })
        (Area.regions area))
    annots;
  Vec.sort compare_row rows;
  let n = Vec.length rows in
  let starts = Array.make n 0L
  and ends = Array.make n 0L
  and ids = Array.make n 0
  and region_ranks = Array.make n 0 in
  Vec.iteri
    (fun i r ->
      starts.(i) <- r.row_start;
      ends.(i) <- r.row_end;
      ids.(i) <- r.row_id;
      region_ranks.(i) <- r.row_rank)
    rows;
  { starts; ends; ids; region_ranks }

let row_count idx = Array.length idx.starts

let annotation_ids idx =
  let ids = Array.copy idx.ids in
  Array.sort compare ids;
  let out = Vec.create () in
  Array.iteri
    (fun i id -> if i = 0 || ids.(i - 1) <> id then Vec.push out id)
    ids;
  Vec.to_array out

let restrict idx ~ids =
  let keep = Vec.create () in
  Array.iteri
    (fun row id -> if Search.mem_sorted_int ids id then Vec.push keep row)
    idx.ids;
  let n = Vec.length keep in
  let starts = Array.make n 0L
  and ends = Array.make n 0L
  and out_ids = Array.make n 0
  and region_ranks = Array.make n 0 in
  Vec.iteri
    (fun i row ->
      starts.(i) <- idx.starts.(row);
      ends.(i) <- idx.ends.(row);
      out_ids.(i) <- idx.ids.(row);
      region_ranks.(i) <- idx.region_ranks.(row))
    keep;
  { starts; ends; ids = out_ids; region_ranks }

let region idx row = Region.make idx.starts.(row) idx.ends.(row)

let pp fmt idx =
  Format.fprintf fmt "@[<v>start|end|id|rank@,";
  for i = 0 to row_count idx - 1 do
    Format.fprintf fmt "%Ld|%Ld|%d|%d@," idx.starts.(i) idx.ends.(i)
      idx.ids.(i) idx.region_ranks.(i)
  done;
  Format.fprintf fmt "@]"
