(** Per-document annotation catalogues.

    The region index is part of the document's stored representation
    in the paper ("we added a region index to the relational
    representation of XML documents", §4.3).  This module gives each
    (document, configuration) pair exactly one extracted
    {!Annots.t}, built on first use. *)

type t

(** [create ()] is an empty catalogue. *)
val create : unit -> t

(** [annots cat config doc] is the cached annotation table of [doc]
    under [config], extracting it on first request. *)
val annots : t -> Config.t -> Standoff_store.Doc.t -> Annots.t

(** [invalidate cat doc] drops cached entries for [doc] (all
    configurations) — for callers that rebuild documents. *)
val invalidate : t -> Standoff_store.Doc.t -> unit
