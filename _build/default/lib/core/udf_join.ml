module Vec = Standoff_util.Vec
module Timing = Standoff_util.Timing
module Area = Standoff_interval.Area

(* Keep only area-annotations, pairing each pre with its area. *)
let annotation_pairs annots pres =
  let out = Vec.create () in
  Array.iter
    (fun pre ->
      match Annots.area_of annots pre with
      | Some a -> Vec.push out (pre, a)
      | None -> ())
    pres;
  out

let join op annots ~deadline ~context ~candidates =
  let context_pairs = annotation_pairs annots context in
  let candidate_pairs =
    match candidates with
    | Some pres -> annotation_pairs annots pres
    | None ->
        (* Figure 2: the inner loop ranges over every area-annotation
           of the document. *)
        let out = Vec.create () in
        Array.iteri
          (fun i id -> Vec.push out (id, annots.Annots.areas.(i)))
          annots.Annots.ids;
        out
  in
  let pred =
    if Op.is_narrow op then Area.contains else Area.overlaps
  in
  let want_match = Op.is_select op in
  let out = Vec.create () in
  (* Candidate-major nested loop: the literal [some $q in $input
     satisfies ...] evaluation of the UDF, negated for the reject
     operators. *)
  Vec.iter
    (fun (cand_pre, cand_area) ->
      Timing.checkpoint deadline;
      let matched =
        Vec.exists (fun (_, ctx_area) -> pred ctx_area cand_area) context_pairs
      in
      if matched = want_match then Vec.push out cand_pre)
    candidate_pairs;
  let arr = Vec.to_array out in
  Array.sort compare arr;
  let dedup = Vec.create () in
  Array.iteri
    (fun i pre -> if i = 0 || arr.(i - 1) <> pre then Vec.push dedup pre)
    arr;
  Vec.to_array dedup
