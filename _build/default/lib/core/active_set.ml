module Vec = Standoff_util.Vec

type kind =
  | Sorted_list
  | Lazy_heap

let kind_of_string = function
  | "list" -> Sorted_list
  | "heap" -> Lazy_heap
  | s -> invalid_arg (Printf.sprintf "Active_set.kind_of_string: %S" s)

let kind_to_string = function Sorted_list -> "list" | Lazy_heap -> "heap"

type callbacks = {
  on_add : iter:int -> ctx:int -> unit;
  on_skip : iter:int -> ctx:int -> unit;
  on_replace : iter:int -> removed:int -> by:int -> unit;
  on_trim : iter:int -> ctx:int -> unit;
}

let no_callbacks =
  {
    on_add = (fun ~iter:_ ~ctx:_ -> ());
    on_skip = (fun ~iter:_ ~ctx:_ -> ());
    on_replace = (fun ~iter:_ ~removed:_ ~by:_ -> ());
    on_trim = (fun ~iter:_ ~ctx:_ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Shared: the per-iteration table backing the single-region
   skip/replace refinements.                                          *)

type per_iter = (int, int64 * int) Hashtbl.t

(* ------------------------------------------------------------------ *)
(* Sorted list (the paper's structure)                                *)

type list_impl = {
  l_ends : int64 Vec.t;  (* descending *)
  l_iters : int Vec.t;
  l_ctxs : int Vec.t;
}

(* First position whose end is strictly below [e]. *)
let list_position_below li e =
  let lo = ref 0 and hi = ref (Vec.length li.l_ends) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (Vec.get li.l_ends mid) e >= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let list_remove_slot li pos =
  Vec.remove li.l_ends pos;
  Vec.remove li.l_iters pos;
  Vec.remove li.l_ctxs pos

(* Locate the slot holding exactly (iter, end_). *)
let list_find_slot li ~iter ~end_ =
  let lo = ref 0 and hi = ref (Vec.length li.l_ends) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (Vec.get li.l_ends mid) end_ > 0 then lo := mid + 1
    else hi := mid
  done;
  let pos = ref !lo in
  while
    !pos < Vec.length li.l_ends
    && Int64.equal (Vec.get li.l_ends !pos) end_
    && Vec.get li.l_iters !pos <> iter
  do
    incr pos
  done;
  if
    !pos < Vec.length li.l_ends
    && Int64.equal (Vec.get li.l_ends !pos) end_
    && Vec.get li.l_iters !pos = iter
  then Some !pos
  else None

let list_insert li ~iter ~ctx ~end_ =
  let pos = list_position_below li end_ in
  Vec.insert li.l_ends pos end_;
  Vec.insert li.l_iters pos iter;
  Vec.insert li.l_ctxs pos ctx

(* ------------------------------------------------------------------ *)
(* Lazy two-heap implementation                                       *)

(* Entries are pushed on both a max-heap (for the emit scan) and a
   min-heap (for trimming); [by_iter] is the source of truth and an
   entry is live iff it matches its iteration's table row.  Stale
   entries are skipped on contact and both heaps are rebuilt when they
   outnumber the live ones. *)
type heap_impl = {
  mutable max_ends : int64 array;
  mutable max_iters : int array;
  mutable max_ctxs : int array;
  mutable max_len : int;
  mutable min_ends : int64 array;
  mutable min_iters : int array;
  mutable min_ctxs : int array;
  mutable min_len : int;
}

let heap_make () =
  {
    max_ends = Array.make 16 0L;
    max_iters = Array.make 16 0;
    max_ctxs = Array.make 16 0;
    max_len = 0;
    min_ends = Array.make 16 0L;
    min_iters = Array.make 16 0;
    min_ctxs = Array.make 16 0;
    min_len = 0;
  }

(* [dir] is 1 for a max-heap, -1 for a min-heap. *)
let heap_push ends iters ctxs len ~dir e it cx =
  let n = !len in
  let cap = Array.length !ends in
  if n >= cap then begin
    let grow a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit !a 0 b 0 n;
      a := b
    in
    grow ends 0L;
    grow iters 0;
    grow ctxs 0
  end;
  let ea = !ends and ia = !iters and ca = !ctxs in
  ea.(n) <- e;
  ia.(n) <- it;
  ca.(n) <- cx;
  len := n + 1;
  let i = ref n in
  let better a b = dir * Int64.compare a b > 0 in
  while !i > 0 && better ea.(!i) ea.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let swap (a : int64 array) = let t = a.(!i) in a.(!i) <- a.(p); a.(p) <- t in
    let swapi (a : int array) = let t = a.(!i) in a.(!i) <- a.(p); a.(p) <- t in
    swap ea;
    swapi ia;
    swapi ca;
    i := p
  done

(* Remove the root; [len] is the length before removal and the caller
   records the new length [len - 1]. *)
let heap_pop_root ends iters ctxs ~len ~dir =
  let n = len - 1 in
  ends.(0) <- ends.(n);
  iters.(0) <- iters.(n);
  ctxs.(0) <- ctxs.(n);
  let better a b = dir * Int64.compare a b > 0 in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let best = ref !i in
    if l < n && better ends.(l) ends.(!best) then best := l;
    if r < n && better ends.(r) ends.(!best) then best := r;
    if !best = !i then continue := false
    else begin
      let b = !best in
      let swap (a : int64 array) = let t = a.(!i) in a.(!i) <- a.(b); a.(b) <- t in
      let swapi (a : int array) = let t = a.(!i) in a.(!i) <- a.(b); a.(b) <- t in
      swap ends;
      swapi iters;
      swapi ctxs;
      i := b
    end
  done

(* ------------------------------------------------------------------ *)
(* The public type                                                    *)

type impl =
  | List of list_impl
  | Heap of heap_impl

type t = {
  impl : impl;
  by_iter : per_iter;
  single_region : bool;
  cb : callbacks;
}

let create kind ~single_region ~callbacks =
  let impl =
    match kind with
    | Sorted_list ->
        List { l_ends = Vec.create (); l_iters = Vec.create (); l_ctxs = Vec.create () }
    | Lazy_heap ->
        if not single_region then
          invalid_arg
            "Active_set.create: Lazy_heap requires single-region mode";
        Heap (heap_make ())
  in
  { impl; by_iter = Hashtbl.create 16; single_region; cb = callbacks }

let size t =
  match t.impl with
  | List li -> Vec.length li.l_ends
  | Heap _ -> Hashtbl.length t.by_iter

let heap_entry_live t e it cx =
  match Hashtbl.find_opt t.by_iter it with
  | Some (live_end, live_ctx) -> Int64.equal live_end e && live_ctx = cx
  | None -> false

let heap_compact t h =
  h.max_len <- 0;
  h.min_len <- 0;
  let max_ends = ref h.max_ends and max_iters = ref h.max_iters and max_ctxs = ref h.max_ctxs in
  let min_ends = ref h.min_ends and min_iters = ref h.min_iters and min_ctxs = ref h.min_ctxs in
  let max_len = ref 0 and min_len = ref 0 in
  Hashtbl.iter
    (fun it (e, cx) ->
      heap_push max_ends max_iters max_ctxs max_len ~dir:1 e it cx;
      heap_push min_ends min_iters min_ctxs min_len ~dir:(-1) e it cx)
    t.by_iter;
  h.max_ends <- !max_ends;
  h.max_iters <- !max_iters;
  h.max_ctxs <- !max_ctxs;
  h.max_len <- !max_len;
  h.min_ends <- !min_ends;
  h.min_iters <- !min_iters;
  h.min_ctxs <- !min_ctxs;
  h.min_len <- !min_len

let heap_insert t h e it cx =
  let live = Hashtbl.length t.by_iter in
  if h.max_len > (2 * live) + 8 then heap_compact t h;
  let max_ends = ref h.max_ends and max_iters = ref h.max_iters and max_ctxs = ref h.max_ctxs in
  let min_ends = ref h.min_ends and min_iters = ref h.min_iters and min_ctxs = ref h.min_ctxs in
  let max_len = ref h.max_len and min_len = ref h.min_len in
  heap_push max_ends max_iters max_ctxs max_len ~dir:1 e it cx;
  heap_push min_ends min_iters min_ctxs min_len ~dir:(-1) e it cx;
  h.max_ends <- !max_ends;
  h.max_iters <- !max_iters;
  h.max_ctxs <- !max_ctxs;
  h.max_len <- !max_len;
  h.min_ends <- !min_ends;
  h.min_iters <- !min_iters;
  h.min_ctxs <- !min_ctxs;
  h.min_len <- !min_len

let add t ~iter ~ctx ~end_ =
  let insert () =
    (match t.impl with
    | List li -> list_insert li ~iter ~ctx ~end_
    | Heap h -> heap_insert t h end_ iter ctx);
    t.cb.on_add ~iter ~ctx
  in
  if not t.single_region then insert ()
  else
    match Hashtbl.find_opt t.by_iter iter with
    | Some (old_end, _) when Int64.compare old_end end_ >= 0 ->
        t.cb.on_skip ~iter ~ctx
    | Some (old_end, old_ctx) ->
        (match t.impl with
        | List li -> (
            match list_find_slot li ~iter ~end_:old_end with
            | Some pos -> list_remove_slot li pos
            | None -> assert false)
        | Heap _ -> () (* the old entry goes stale *));
        Hashtbl.replace t.by_iter iter (end_, ctx);
        t.cb.on_replace ~iter ~removed:old_ctx ~by:ctx;
        insert ()
    | None ->
        Hashtbl.replace t.by_iter iter (end_, ctx);
        insert ()

let trim t ~start =
  match t.impl with
  | List li ->
      while
        Vec.length li.l_ends > 0
        && Int64.compare (Vec.last li.l_ends) start < 0
      do
        let pos = Vec.length li.l_ends - 1 in
        let iter = Vec.get li.l_iters pos and ctx = Vec.get li.l_ctxs pos in
        list_remove_slot li pos;
        if t.single_region then Hashtbl.remove t.by_iter iter;
        t.cb.on_trim ~iter ~ctx
      done
  | Heap h ->
      let continue = ref true in
      while !continue && h.min_len > 0 do
        let e = h.min_ends.(0) and it = h.min_iters.(0) and cx = h.min_ctxs.(0) in
        if Int64.compare e start >= 0 then continue := false
        else begin
          if heap_entry_live t e it cx then begin
            Hashtbl.remove t.by_iter it;
            t.cb.on_trim ~iter:it ~ctx:cx
          end;
          heap_pop_root h.min_ends h.min_iters h.min_ctxs ~len:h.min_len
            ~dir:(-1);
          h.min_len <- h.min_len - 1
        end
      done

let iter_end_ge t threshold f =
  match t.impl with
  | List li ->
      let k = ref 0 in
      while
        !k < Vec.length li.l_ends
        && Int64.compare (Vec.get li.l_ends !k) threshold >= 0
      do
        f ~iter:(Vec.get li.l_iters !k) ~ctx:(Vec.get li.l_ctxs !k);
        incr k
      done
  | Heap h ->
      (* Pruned DFS over the max-heap: a node's end bounds its whole
         subtree, stale or not. *)
      let rec visit i =
        if i < h.max_len && Int64.compare h.max_ends.(i) threshold >= 0 then begin
          if heap_entry_live t h.max_ends.(i) h.max_iters.(i) h.max_ctxs.(i)
          then f ~iter:h.max_iters.(i) ~ctx:h.max_ctxs.(i);
          visit ((2 * i) + 1);
          visit ((2 * i) + 2)
        end
      in
      visit 0

let iter_all t f =
  match t.impl with
  | List li ->
      for k = 0 to Vec.length li.l_ends - 1 do
        f ~iter:(Vec.get li.l_iters k) ~ctx:(Vec.get li.l_ctxs k)
      done
  | Heap _ -> Hashtbl.iter (fun iter (_, ctx) -> f ~iter ~ctx) t.by_iter

let covered t ~iter ~end_ =
  t.single_region
  &&
  match Hashtbl.find_opt t.by_iter iter with
  | Some (old_end, _) -> Int64.compare old_end end_ >= 0
  | None -> false
