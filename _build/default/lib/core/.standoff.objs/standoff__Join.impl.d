lib/core/join.ml: Active_set Annots Array Config Merge_join_ll Op Region_index Standoff_interval Standoff_util Udf_join
