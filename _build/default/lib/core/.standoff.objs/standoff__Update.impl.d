lib/core/update.ml: Annots Array Catalog Config Int64 Printf Standoff_interval Standoff_store String
