lib/core/annots.mli: Config Region_index Standoff_interval Standoff_store
