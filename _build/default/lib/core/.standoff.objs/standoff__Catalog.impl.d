lib/core/catalog.ml: Annots Config Hashtbl List Standoff_store
