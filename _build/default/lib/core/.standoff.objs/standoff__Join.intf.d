lib/core/join.mli: Active_set Annots Config Op Standoff_util
