lib/core/merge_join_ll.mli: Active_set Annots Region_index Standoff_util
