lib/core/active_set.mli:
