lib/core/active_set.ml: Array Hashtbl Int64 Printf Standoff_util
