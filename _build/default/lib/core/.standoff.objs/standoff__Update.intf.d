lib/core/update.mli: Catalog Config Standoff_interval Standoff_store
