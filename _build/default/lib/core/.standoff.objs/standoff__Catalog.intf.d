lib/core/catalog.mli: Annots Config Standoff_store
