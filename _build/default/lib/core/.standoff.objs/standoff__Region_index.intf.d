lib/core/region_index.mli: Format Standoff_interval
