lib/core/spec.mli: Annots Op Standoff_interval
