lib/core/config.ml: Format Option Printf Standoff_xml String
