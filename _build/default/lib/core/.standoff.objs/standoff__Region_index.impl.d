lib/core/region_index.ml: Array Format Int64 List Standoff_interval Standoff_util
