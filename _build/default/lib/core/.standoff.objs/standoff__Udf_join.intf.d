lib/core/udf_join.mli: Annots Op Standoff_util
