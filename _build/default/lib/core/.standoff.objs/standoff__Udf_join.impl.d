lib/core/udf_join.ml: Annots Array Op Standoff_interval Standoff_util
