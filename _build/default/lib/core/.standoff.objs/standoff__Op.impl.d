lib/core/op.ml: Format Printf
