lib/core/merge_join_ll.ml: Active_set Annots Array Int64 List Region_index Standoff_interval Standoff_util
