lib/core/spec.ml: Annots Array List Op Option Standoff_interval Standoff_util
