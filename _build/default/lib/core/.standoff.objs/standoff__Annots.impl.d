lib/core/annots.ml: Array Config Int64 List Option Printf Region_index Standoff_interval Standoff_store Standoff_util String
