module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let byte w b = Buffer.add_char w (Char.chr (b land 0xFF))

  let rec uvarint64 w (v : int64) =
    let low = Int64.to_int (Int64.logand v 0x7FL) in
    let rest = Int64.shift_right_logical v 7 in
    if Int64.equal rest 0L then byte w low
    else begin
      byte w (low lor 0x80);
      uvarint64 w rest
    end

  (* Zig-zag: small magnitudes of either sign stay short. *)
  let varint64 w v =
    uvarint64 w (Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63))

  let varint w i = varint64 w (Int64.of_int i)

  let string w s =
    varint w (String.length s);
    Buffer.add_string w s

  let int_array w a =
    varint w (Array.length a);
    Array.iter (varint w) a

  let string_array w a =
    varint w (Array.length a);
    Array.iter (string w) a

  let contents = Buffer.contents
end

module Reader = struct
  type t = {
    src : string;
    mutable off : int;
  }

  exception Corrupt of string

  let create src = { src; off = 0 }

  let byte r =
    if r.off >= String.length r.src then raise (Corrupt "unexpected end of input");
    let b = Char.code r.src.[r.off] in
    r.off <- r.off + 1;
    b

  let uvarint64 r =
    let rec loop shift acc =
      if shift > 63 then raise (Corrupt "varint too long");
      let b = byte r in
      let acc =
        Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift)
      in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    in
    loop 0 0L

  let varint64 r =
    let u = uvarint64 r in
    Int64.logxor (Int64.shift_right_logical u 1) (Int64.neg (Int64.logand u 1L))

  let varint r = Int64.to_int (varint64 r)

  let string r =
    let n = varint r in
    if n < 0 || r.off + n > String.length r.src then
      raise (Corrupt "bad string length");
    let s = String.sub r.src r.off n in
    r.off <- r.off + n;
    s

  let checked_length r =
    let n = varint r in
    if n < 0 || n > String.length r.src - r.off then
      raise (Corrupt "bad array length");
    n

  let int_array r =
    let n = checked_length r in
    Array.init n (fun _ -> varint r)

  let string_array r =
    let n = checked_length r in
    Array.init n (fun _ -> string r)

  let at_end r = r.off = String.length r.src
end

let fletcher32 s =
  let a = ref 0 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65535;
      b := (!b + !a) mod 65535)
    s;
  (!b lsl 16) lor !a
