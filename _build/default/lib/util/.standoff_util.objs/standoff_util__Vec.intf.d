lib/util/vec.mli:
