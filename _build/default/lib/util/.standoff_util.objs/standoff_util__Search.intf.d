lib/util/search.mli:
