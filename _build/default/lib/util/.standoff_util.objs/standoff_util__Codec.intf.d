lib/util/codec.mli:
