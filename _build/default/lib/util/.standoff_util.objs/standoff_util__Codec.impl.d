lib/util/codec.ml: Array Buffer Char Int64 String
