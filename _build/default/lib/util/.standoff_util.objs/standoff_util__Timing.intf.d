lib/util/timing.mli:
