lib/util/prng.mli:
