lib/util/timing.ml: Unix
