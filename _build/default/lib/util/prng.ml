type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): fast, full-period, and trivially
   seedable, which is all the synthetic generators need. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

let int_in_range t lo hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next_int64 t)
