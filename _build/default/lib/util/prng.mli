(** Deterministic pseudo-random number generation (splitmix64).

    All data generators in this repository (XMark documents, synthetic
    annotation sets, property-test corpora) derive their randomness from
    this module so that every experiment is reproducible from a seed. *)

type t

(** [create seed] is a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [next_int64 t] is the next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t lo hi] is a uniform integer in [\[lo, hi\]]
    (inclusive).
    @raise Invalid_argument if [lo > hi]. *)
val int_in_range : t -> int -> int -> int

(** [float t] is a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [choice t a] is a uniformly chosen element of [a].
    @raise Invalid_argument on an empty array. *)
val choice : t -> 'a array -> 'a

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent child generator; the parent
    advances.  Used to give document sections independent streams so
    that generation order does not matter. *)
val split : t -> t
