let lower_bound ~cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound ~cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_sorted ~cmp a x =
  let i = lower_bound ~cmp a x in
  i < Array.length a && cmp a.(i) x = 0

let lower_bound_int a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_sorted_int a x =
  let i = lower_bound_int a x in
  i < Array.length a && a.(i) = x
