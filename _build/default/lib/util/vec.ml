(* The backing store is an [Obj.t array]: its representation is fixed
   by its static type, so the vector is safe for every element type —
   including [float], which a naive ['a array] with a dummy value would
   corrupt through the flat float-array optimisation.  Elements are
   boxed exactly as the surrounding code created them; ints stay
   immediate. *)
type 'a t = {
  mutable data : Obj.t array;
  mutable len : int;
}

let nil = Obj.repr 0

let create () = { data = [||]; len = 0 }

let with_capacity n =
  if n <= 0 then create () else { data = Array.make n nil; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get (type a) (v : a t) i : a =
  check v i;
  Obj.obj (Array.unsafe_get v.data i)

let set (type a) (v : a t) i (x : a) =
  check v i;
  Array.unsafe_set v.data i (Obj.repr x)

let grow v needed =
  let cap = Array.length v.data in
  if needed > cap then begin
    let new_cap = max needed (max 8 (2 * cap)) in
    let data = Array.make new_cap nil in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push (type a) (v : a t) (x : a) =
  grow v (v.len + 1);
  Array.unsafe_set v.data v.len (Obj.repr x);
  v.len <- v.len + 1

let pop (type a) (v : a t) : a =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  (* Avoid keeping the popped element alive through the backing array. *)
  Array.unsafe_set v.data v.len nil;
  Obj.obj x

let last (type a) (v : a t) : a =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  Obj.obj (Array.unsafe_get v.data (v.len - 1))

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

let remove v i =
  check v i;
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1

let insert (type a) (v : a t) i (x : a) =
  if i < 0 || i > v.len then invalid_arg "Vec.insert";
  grow v (v.len + 1);
  Array.blit v.data i v.data (i + 1) (v.len - i);
  Array.unsafe_set v.data i (Obj.repr x);
  v.len <- v.len + 1

let to_array (type a) (v : a t) : a array =
  Array.init v.len (fun i -> Obj.obj (Array.unsafe_get v.data i))

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []

let of_array (type a) (a : a array) : a t =
  {
    data = Array.init (Array.length a) (fun i -> Obj.repr a.(i));
    len = Array.length a;
  }

let of_list l = of_array (Array.of_list l)

let iter (type a) (f : a -> unit) (v : a t) =
  for i = 0 to v.len - 1 do
    f (Obj.obj (Array.unsafe_get v.data i))
  done

let iteri (type a) (f : int -> a -> unit) (v : a t) =
  for i = 0 to v.len - 1 do
    f i (Obj.obj (Array.unsafe_get v.data i))
  done

let fold_left (type a) f acc (v : a t) =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Obj.obj (Array.unsafe_get v.data i) : a)
  done;
  !acc

let map f v =
  let out = with_capacity v.len in
  iter (fun x -> push out (f x)) v;
  out

let exists p v =
  let rec loop i = i < v.len && (p (get v i) || loop (i + 1)) in
  loop 0

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  for i = 0 to v.len - 1 do
    Array.unsafe_set v.data i (Obj.repr a.(i))
  done

let stable_sort cmp v =
  let a = to_array v in
  Array.stable_sort cmp a;
  for i = 0 to v.len - 1 do
    Array.unsafe_set v.data i (Obj.repr a.(i))
  done

let append dst src = iter (fun x -> push dst x) src
