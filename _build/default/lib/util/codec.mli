(** Binary encoding primitives for the persistence layer.

    Little-endian, with LEB128 variable-length integers (zig-zag for
    signed values) so the columnar document tables stay compact: pre
    ranks, sizes and levels are small, and region positions cluster. *)

module Writer : sig
  type t

  val create : unit -> t

  (** [byte w b] writes one byte (0-255). *)
  val byte : t -> int -> unit

  (** [varint w i] writes a signed OCaml int (zig-zag LEB128). *)
  val varint : t -> int -> unit

  (** [varint64 w i] writes a signed 64-bit value. *)
  val varint64 : t -> int64 -> unit

  (** [string w s] writes a length-prefixed string. *)
  val string : t -> string -> unit

  (** [int_array w a] writes a length-prefixed array of varints. *)
  val int_array : t -> int array -> unit

  (** [string_array w a] writes a length-prefixed array of strings. *)
  val string_array : t -> string array -> unit

  (** [contents w] is everything written so far. *)
  val contents : t -> string
end

module Reader : sig
  type t

  exception Corrupt of string
  (** Raised on truncated input or malformed encodings. *)

  (** [create s] reads from [s], starting at offset 0. *)
  val create : string -> t

  val byte : t -> int
  val varint : t -> int
  val varint64 : t -> int64
  val string : t -> string
  val int_array : t -> int array
  val string_array : t -> string array

  (** [at_end r] is true when every byte has been consumed. *)
  val at_end : t -> bool
end

(** [fletcher32 s] is a simple integrity checksum of [s]. *)
val fletcher32 : string -> int
