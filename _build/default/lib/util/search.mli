(** Binary searches over sorted arrays.

    The region index and the staircase joins rely on these to position
    scans; all functions assume the array is sorted consistently with
    the supplied comparison. *)

(** [lower_bound ~cmp a x] is the smallest index [i] such that
    [cmp a.(i) x >= 0], i.e. the first position where [x] could be
    inserted keeping [a] sorted.  Returns [Array.length a] if every
    element is smaller than [x]. *)
val lower_bound : cmp:('a -> 'b -> int) -> 'a array -> 'b -> int

(** [upper_bound ~cmp a x] is the smallest index [i] such that
    [cmp a.(i) x > 0]. *)
val upper_bound : cmp:('a -> 'b -> int) -> 'a array -> 'b -> int

(** [mem_sorted ~cmp a x] tests membership in a sorted array. *)
val mem_sorted : cmp:('a -> 'b -> int) -> 'a array -> 'b -> bool

(** [lower_bound_int a x] is [lower_bound] specialised to sorted [int]
    arrays with the natural order (avoids closure allocation on the hot
    path of the joins). *)
val lower_bound_int : int array -> int -> int

(** [mem_sorted_int a x] is membership in a sorted [int] array. *)
val mem_sorted_int : int array -> int -> bool
