(** Growable vectors.

    A thin, predictable dynamic-array abstraction used throughout the
    storage and join layers, where result sizes are not known in
    advance.  Elements are stored in a plain [array], so [int] payloads
    stay unboxed. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [with_capacity n] is an empty vector with room for [n] elements
    before the first reallocation. *)
val with_capacity : int -> 'a t

(** [length v] is the number of elements currently stored. *)
val length : 'a t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] at the end, growing the backing store as
    needed (amortised O(1)). *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [last v] is the last element without removing it.
    @raise Invalid_argument on an empty vector. *)
val last : 'a t -> 'a

(** [clear v] resets the length to 0 (capacity is retained). *)
val clear : 'a t -> unit

(** [truncate v n] shortens [v] to its first [n] elements.
    @raise Invalid_argument if [n] exceeds the current length. *)
val truncate : 'a t -> int -> unit

(** [remove v i] removes the element at index [i], shifting the
    subsequent elements left (O(n)).  Needed by the active-item list of
    the StandOff merge joins, which may delete in the middle. *)
val remove : 'a t -> int -> unit

(** [insert v i x] inserts [x] at index [i], shifting subsequent
    elements right (O(n)). *)
val insert : 'a t -> int -> 'a -> unit

(** [to_array v] is a fresh array with the contents of [v]. *)
val to_array : 'a t -> 'a array

(** [to_list v] is the contents of [v] as a list, in order. *)
val to_list : 'a t -> 'a list

(** [of_array a] is a vector with the elements of [a]. *)
val of_array : 'a array -> 'a t

(** [of_list l] is a vector with the elements of [l]. *)
val of_list : 'a list -> 'a t

(** [iter f v] applies [f] to every element in order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] applies [f i x] to every element [x] at index [i]. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold_left f acc v] folds over the elements in order. *)
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [map f v] is a fresh vector with [f] applied to every element. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [exists p v] tests whether some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [sort cmp v] sorts [v] in place (not stable). *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [stable_sort cmp v] sorts [v] in place, preserving the relative
    order of equal elements. *)
val stable_sort : ('a -> 'a -> int) -> 'a t -> unit

(** [append dst src] pushes all elements of [src] onto [dst]. *)
val append : 'a t -> 'a t -> unit
