lib/store/collection.ml: Blob Doc Hashtbl Printf Standoff_util
