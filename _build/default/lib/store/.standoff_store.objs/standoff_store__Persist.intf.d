lib/store/persist.mli: Collection Doc
