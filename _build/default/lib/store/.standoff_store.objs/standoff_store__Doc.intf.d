lib/store/doc.mli: Format Hashtbl Name_pool Standoff_xml
