lib/store/name_pool.ml: Hashtbl Printf Standoff_util
