lib/store/collection.mli: Blob Doc
