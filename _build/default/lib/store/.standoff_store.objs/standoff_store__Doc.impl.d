lib/store/doc.ml: Array Buffer Format Hashtbl List Name_pool Printf Standoff_util Standoff_xml
