lib/store/blob.mli: Standoff_interval
