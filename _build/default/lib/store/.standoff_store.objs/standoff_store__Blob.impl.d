lib/store/blob.ml: Buffer Fun Int64 List Printf Standoff_interval String
