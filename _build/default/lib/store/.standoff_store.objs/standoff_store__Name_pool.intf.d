lib/store/name_pool.mli:
