lib/store/persist.ml: Array Blob Collection Doc Fun List Name_pool Printf Standoff_util String
