(** BLOB storage: the annotated objects themselves (paper §2).

    A blob is an append-only byte buffer addressed by 64-bit positions;
    stand-off regions in annotation documents point into it.  All join
    algorithms treat blob content as opaque — the blob only matters
    when a query (or an example program) wants to {e show} the matched
    portion of the underlying object. *)

type t

(** [create ~name ()] is an empty blob. *)
val create : name:string -> unit -> t

(** [of_string ~name s] wraps existing content. *)
val of_string : name:string -> string -> t

(** [name b] is the blob's name. *)
val name : t -> string

(** [length b] is the current size in bytes. *)
val length : t -> int64

(** [append b s] appends [s] and returns the region the new bytes
    occupy ([\[old_length, old_length + |s| - 1\]]).
    @raise Invalid_argument when [s] is empty (a region cannot be
    empty under the closed-interval model). *)
val append : t -> string -> Standoff_interval.Region.t

(** [read b region] is the bytes covered by [region].
    @raise Invalid_argument if the region reaches past the end. *)
val read : t -> Standoff_interval.Region.t -> string

(** [read_area b area] concatenates the bytes of each region of the
    area in order — e.g. re-assembling a file from scattered disk
    blocks. *)
val read_area : t -> Standoff_interval.Area.t -> string

(** [contents b] is the whole blob as a string. *)
val contents : t -> string

(** [to_file b path] writes the blob to disk. *)
val to_file : t -> string -> unit

(** [of_file ~name path] loads a blob from disk. *)
val of_file : name:string -> string -> t
