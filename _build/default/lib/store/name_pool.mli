(** Interned qualified names.

    The shredded store keeps element/attribute names as small integers;
    this pool maps between the two representations.  Ids are dense and
    allocation-ordered, so they can index arrays directly. *)

type t

(** [create ()] is an empty pool. *)
val create : unit -> t

(** [intern pool s] returns the id of [s], allocating one on first
    sight. *)
val intern : t -> string -> int

(** [find pool s] is the id of [s] if already interned. *)
val find : t -> string -> int option

(** [name pool id] is the string for [id].
    @raise Invalid_argument on an unknown id. *)
val name : t -> int -> string

(** [count pool] is the number of distinct interned names. *)
val count : t -> int
