type t = {
  by_name : (string, int) Hashtbl.t;
  by_id : string Standoff_util.Vec.t;
}

let create () =
  { by_name = Hashtbl.create 64; by_id = Standoff_util.Vec.create () }

let intern pool s =
  match Hashtbl.find_opt pool.by_name s with
  | Some id -> id
  | None ->
      let id = Standoff_util.Vec.length pool.by_id in
      Hashtbl.add pool.by_name s id;
      Standoff_util.Vec.push pool.by_id s;
      id

let find pool s = Hashtbl.find_opt pool.by_name s

let name pool id =
  if id < 0 || id >= Standoff_util.Vec.length pool.by_id then
    invalid_arg (Printf.sprintf "Name_pool.name: unknown id %d" id);
  Standoff_util.Vec.get pool.by_id id

let count pool = Standoff_util.Vec.length pool.by_id
