module Region = Standoff_interval.Region
module Area = Standoff_interval.Area

type t = {
  blob_name : string;
  buf : Buffer.t;
}

let create ~name () = { blob_name = name; buf = Buffer.create 4096 }

let of_string ~name s =
  let b = create ~name () in
  Buffer.add_string b.buf s;
  b

let name b = b.blob_name
let length b = Int64.of_int (Buffer.length b.buf)

let append b s =
  if String.length s = 0 then invalid_arg "Blob.append: empty content";
  let start = Buffer.length b.buf in
  Buffer.add_string b.buf s;
  Region.make (Int64.of_int start) (Int64.of_int (start + String.length s - 1))

let read b region =
  let start = Int64.to_int (Region.start_pos region) in
  let stop = Int64.to_int (Region.end_pos region) in
  if start < 0 || stop >= Buffer.length b.buf then
    invalid_arg
      (Printf.sprintf "Blob.read: region %s outside blob %s (length %d)"
         (Region.to_string region) b.blob_name (Buffer.length b.buf));
  Buffer.sub b.buf start (stop - start + 1)

let read_area b area =
  String.concat "" (List.map (read b) (Area.regions area))

let contents b = Buffer.contents b.buf

let to_file b path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc b.buf)

let of_file ~name path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string ~name (really_input_string ic len))
