(** Document collections and global node handles.

    StandOff steps, like all XPath steps, match only nodes from the
    same XML fragment (paper §3.3); the collection supplies the
    [doc_id] that the join algorithms partition on.  Global document
    order is [(doc_id, pre)] lexicographic. *)

type t

type node = {
  doc_id : int;
  pre : int;
}
(** A node handle valid within one collection. *)

(** [compare_node a b] is document order across the collection. *)
val compare_node : node -> node -> int

(** [create ()] is an empty collection. *)
val create : unit -> t

(** [add coll doc] registers [doc] and returns its id.
    @raise Invalid_argument if a document with the same name exists. *)
val add : t -> Doc.t -> int

(** [add_blob coll blob] registers a BLOB under its name.
    @raise Invalid_argument on duplicate names. *)
val add_blob : t -> Blob.t -> unit

(** [doc coll id] is the document with id [id].
    @raise Invalid_argument on an unknown id. *)
val doc : t -> int -> Doc.t

(** [doc_id_of_name coll name] looks a document up by name. *)
val doc_id_of_name : t -> string -> int option

(** [blob coll name] looks a BLOB up by name. *)
val blob : t -> string -> Blob.t option

(** [doc_count coll] is the number of registered documents. *)
val doc_count : t -> int

(** [root_node coll id] is the handle of document [id]'s document
    node. *)
val root_node : t -> int -> node

(** [load_string coll ~name s] parses, shreds and registers a document
    in one step, returning its id. *)
val load_string : t -> name:string -> string -> int

(** [fold_docs f acc coll] folds over [(id, doc)] pairs in id order. *)
val fold_docs : ('acc -> int -> Doc.t -> 'acc) -> 'acc -> t -> 'acc

(** [fold_blobs f acc coll] folds over registered BLOBs (unspecified
    order). *)
val fold_blobs : ('acc -> Blob.t -> 'acc) -> 'acc -> t -> 'acc

(** [checkpoint coll] marks the current document count so documents
    registered later (e.g. nodes constructed during one query run) can
    be dropped again with {!rollback}. *)
val checkpoint : t -> int

(** [rollback coll mark] unregisters every document added after
    [checkpoint] returned [mark].  Node handles into those documents
    become invalid. *)
val rollback : t -> int -> unit
