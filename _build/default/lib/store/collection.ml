module Vec = Standoff_util.Vec

type t = {
  docs : Doc.t Vec.t;
  by_name : (string, int) Hashtbl.t;
  blobs : (string, Blob.t) Hashtbl.t;
}

type node = {
  doc_id : int;
  pre : int;
}

let compare_node a b =
  let c = compare a.doc_id b.doc_id in
  if c <> 0 then c else compare a.pre b.pre

let create () =
  { docs = Vec.create (); by_name = Hashtbl.create 8; blobs = Hashtbl.create 8 }

let add coll d =
  let name = d.Doc.doc_name in
  if Hashtbl.mem coll.by_name name then
    invalid_arg (Printf.sprintf "Collection.add: duplicate document %S" name);
  let id = Vec.length coll.docs in
  Vec.push coll.docs d;
  Hashtbl.add coll.by_name name id;
  id

let add_blob coll b =
  let name = Blob.name b in
  if Hashtbl.mem coll.blobs name then
    invalid_arg (Printf.sprintf "Collection.add_blob: duplicate blob %S" name);
  Hashtbl.add coll.blobs name b

let doc coll id =
  if id < 0 || id >= Vec.length coll.docs then
    invalid_arg (Printf.sprintf "Collection.doc: unknown id %d" id);
  Vec.get coll.docs id

let doc_id_of_name coll name = Hashtbl.find_opt coll.by_name name
let blob coll name = Hashtbl.find_opt coll.blobs name
let doc_count coll = Vec.length coll.docs
let root_node _coll id = { doc_id = id; pre = 0 }

let load_string coll ~name s = add coll (Doc.parse ~name s)

let fold_docs f acc coll =
  let acc = ref acc in
  Vec.iteri (fun id d -> acc := f !acc id d) coll.docs;
  !acc

let checkpoint coll = Vec.length coll.docs

let rollback coll mark =
  if mark < 0 || mark > Vec.length coll.docs then
    invalid_arg "Collection.rollback: invalid checkpoint";
  for id = mark to Vec.length coll.docs - 1 do
    Hashtbl.remove coll.by_name (Vec.get coll.docs id).Doc.doc_name
  done;
  Vec.truncate coll.docs mark

let fold_blobs f acc coll =
  Hashtbl.fold (fun _ blob acc -> f acc blob) coll.blobs acc
