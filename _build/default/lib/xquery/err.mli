(** Dynamic and static errors of the XQuery engine. *)

exception Error of string

(** [raisef fmt ...] raises {!Error} with a formatted message. *)
val raisef : ('a, unit, string, 'b) format4 -> 'a
