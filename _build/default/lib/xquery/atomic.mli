(** Atomization, the effective boolean value, general comparisons and
    arithmetic — the XQuery value semantics the evaluator delegates
    to.

    One deliberate deviation from the W3C rules: untyped values that
    look like integers are compared as 64-bit integers rather than
    doubles, so region positions up to 2{^63}-1 (file offsets into
    large disk images) never lose precision.  The paper's
    implementation makes the same assumption (§2). *)

type t =
  | A_int of int64
  | A_float of float
  | A_str of string
  | A_bool of bool
  | A_untyped of string  (** node content awaiting type coercion *)

(** [atomize coll item] is the typed value of an item; nodes atomize to
    their string value as untyped data. *)
val atomize :
  Standoff_store.Collection.t -> Standoff_relalg.Item.t -> t

(** [string_value coll item] is the XPath string value of any item. *)
val string_value :
  Standoff_store.Collection.t -> Standoff_relalg.Item.t -> string

(** [to_item a] re-embeds an atomic as an item. *)
val to_item : t -> Standoff_relalg.Item.t

(** Comparison operators of general comparisons. *)
type cmp =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

(** [compare_atomics cmp a b] applies the XQuery general-comparison
    conversion rules (untyped vs. numeric casts the untyped side,
    untyped vs. string compares as strings, numeric promotion).
    @raise Err.Error on incomparable types or uncastable values. *)
val compare_atomics : cmp -> t -> t -> bool

(** Arithmetic operators. *)
type arith =
  | Add
  | Sub
  | Mul
  | Div
  | Idiv
  | Mod

(** [arithmetic op a b] — integer arithmetic stays integral except for
    [Div], which promotes to float when inexact.
    @raise Err.Error on non-numeric operands or division by zero for
    [Idiv]/[Mod]. *)
val arithmetic : arith -> t -> t -> t

(** [negate a] is unary minus. *)
val negate : t -> t

(** [effective_boolean_value coll items] — empty is false; a sequence
    whose first item is a node is true; a singleton boolean, number or
    string follows the usual rules.
    @raise Err.Error on other sequences. *)
val effective_boolean_value :
  Standoff_store.Collection.t -> Standoff_relalg.Item.t list -> bool

(** [to_number a] coerces to a float ({!A_int} passes through losslessly
    when re-embedded).
    @raise Err.Error when not castable. *)
val to_number : t -> t

(** [atomic_to_string a] is the canonical lexical form. *)
val atomic_to_string : t -> string

(** [order_compare a b] is a total three-way comparison for [order by]
    sorting: numeric when both sides are (or cast to) numbers,
    lexicographic on canonical forms otherwise. *)
val order_compare : t -> t -> int
