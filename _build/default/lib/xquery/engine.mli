(** The query engine façade: parse a query, process its prolog
    ([declare option standoff-*], [declare function], [declare
    variable]), and evaluate it against a document collection under a
    chosen StandOff evaluation strategy.

    Nodes constructed by element constructors live in scratch documents
    registered in the collection.  By default they stay alive so the
    returned node handles remain valid; callers that run many queries
    (the benchmark harness) pass [rollback_constructed:true] or use
    {!run_with_timeout}, which always rolls back, and consume results
    through [serialized]. *)

type t

(** [create ?strategy coll] wraps a collection.  Default strategy:
    {!Standoff.Config.Loop_lifted}. *)
val create : ?strategy:Standoff.Config.strategy -> Standoff_store.Collection.t -> t

(** [collection t] is the underlying collection. *)
val collection : t -> Standoff_store.Collection.t

(** [catalog t] is the annotation catalogue (region indexes). *)
val catalog : t -> Standoff.Catalog.t

(** [set_strategy t s] changes the default strategy. *)
val set_strategy : t -> Standoff.Config.strategy -> unit

(** Everything a query run produces. *)
type result = {
  items : Standoff_relalg.Item.t list;
  serialized : string;  (** materialized before constructed nodes are
                            rolled back *)
  config : Standoff.Config.t;  (** the configuration after the prolog *)
}

(** [run t ?strategy ?deadline ?context_doc query] parses and evaluates
    [query].  [context_doc] names the document that leading [/] paths
    and bare [//x] paths refer to.
    @raise Err.Error on static/dynamic errors
    @raise Lexer.Syntax_error on parse errors
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val run :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?context_doc:string ->
  ?rollback_constructed:bool ->
  string ->
  result

(** [explain query] parses [query] and renders the desugared form the
    evaluator sees — abbreviations expanded, predicates turned into
    per-context loops, [//] spelled out.  Raises the same parse errors
    as {!run}. *)
val explain : string -> string

(** [run_with_timeout t ?strategy ?context_doc ~seconds query] is
    {!run} under a wall-clock budget, reporting DNF as
    [Timed_out] — the protocol of the paper's Figure 6. *)
val run_with_timeout :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?context_doc:string ->
  seconds:float ->
  string ->
  result Standoff_util.Timing.outcome
