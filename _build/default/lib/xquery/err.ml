exception Error of string

let raisef fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt
