module Item = Standoff_relalg.Item
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection

type t =
  | A_int of int64
  | A_float of float
  | A_str of string
  | A_bool of bool
  | A_untyped of string

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else string_of_float f

let string_value coll = function
  | Item.Node n ->
      Doc.string_value (Collection.doc coll n.Collection.doc_id) n.Collection.pre
  | Item.Attribute (_, _, v) -> v
  | Item.Bool b -> if b then "true" else "false"
  | Item.Int i -> Int64.to_string i
  | Item.Float f -> float_to_string f
  | Item.Str s -> s

let atomize coll = function
  | Item.Node _ as n -> A_untyped (string_value coll n)
  | Item.Attribute (_, _, v) -> A_untyped v
  | Item.Bool b -> A_bool b
  | Item.Int i -> A_int i
  | Item.Float f -> A_float f
  | Item.Str s -> A_str s

let to_item = function
  | A_int i -> Item.Int i
  | A_float f -> Item.Float f
  | A_str s | A_untyped s -> Item.Str s
  | A_bool b -> Item.Bool b

let atomic_to_string = function
  | A_int i -> Int64.to_string i
  | A_float f -> float_to_string f
  | A_str s | A_untyped s -> s
  | A_bool b -> if b then "true" else "false"

(* Integral strings stay 64-bit exact; everything else falls back to
   float (see mli note). *)
let untyped_to_number_opt s =
  let s = String.trim s in
  match Int64.of_string_opt s with
  | Some i -> Some (A_int i)
  | None -> Option.map (fun f -> A_float f) (float_of_string_opt s)

let untyped_to_number s =
  match untyped_to_number_opt s with
  | Some a -> a
  | None -> Err.raisef "cannot cast %S to a number" s

let to_number = function
  | A_int _ as a -> a
  | A_float _ as a -> a
  | (A_str s | A_untyped s) -> untyped_to_number s
  | A_bool b -> A_int (if b then 1L else 0L)

(* A proper total order is required (Array.sort!): numeric-convertible
   values form one class ordered numerically and sort before the string
   class, which is ordered lexicographically.  Comparing a number with
   a string via its lexical form instead would break transitivity
   (708 < "9" < "96.4" < 708). *)
let order_compare a b =
  let as_number = function
    | (A_int _ | A_float _) as n -> Some n
    | A_untyped s -> untyped_to_number_opt s
    | A_bool b -> Some (A_int (if b then 1L else 0L))
    | A_str _ -> None
  in
  match (as_number a, as_number b) with
  | Some (A_int x), Some (A_int y) -> Int64.compare x y
  | Some x, Some y ->
      let f = function A_int i -> Int64.to_float i | A_float f -> f | _ -> 0.0 in
      Float.compare (f x) (f y)
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> String.compare (atomic_to_string a) (atomic_to_string b)

type cmp =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

let apply_cmp cmp c =
  match cmp with
  | Ceq -> c = 0
  | Cne -> c <> 0
  | Clt -> c < 0
  | Cle -> c <= 0
  | Cgt -> c > 0
  | Cge -> c >= 0

let rec compare_atomics cmp a b =
  match (a, b) with
  | A_int x, A_int y -> apply_cmp cmp (Int64.compare x y)
  | A_float x, A_float y -> apply_cmp cmp (Float.compare x y)
  | A_int x, A_float y -> apply_cmp cmp (Float.compare (Int64.to_float x) y)
  | A_float x, A_int y -> apply_cmp cmp (Float.compare x (Int64.to_float y))
  | A_str x, A_str y -> apply_cmp cmp (String.compare x y)
  | A_bool x, A_bool y -> apply_cmp cmp (Bool.compare x y)
  (* Untyped data takes the type of the other operand.  Between two
     untyped values, equality is string equality (XQuery), but the
     ordering operators compare numerically when both sides parse as
     numbers — the XPath 1.0 rule, and what the paper's Figure 2/3
     UDFs ("@start >= @start") rely on. *)
  | A_untyped x, A_untyped y -> (
      match cmp with
      | Ceq | Cne -> apply_cmp cmp (String.compare x y)
      | Clt | Cle | Cgt | Cge -> (
          match (untyped_to_number_opt x, untyped_to_number_opt y) with
          | Some nx, Some ny -> compare_atomics cmp nx ny
          | _ -> apply_cmp cmp (String.compare x y)))
  | A_untyped x, (A_int _ | A_float _) ->
      compare_atomics cmp (untyped_to_number x) b
  | (A_int _ | A_float _), A_untyped y ->
      compare_atomics cmp a (untyped_to_number y)
  | A_untyped x, A_str y | A_str x, A_untyped y ->
      apply_cmp cmp (String.compare x y)
  | A_untyped x, A_bool y ->
      apply_cmp cmp (Bool.compare (untyped_to_bool x) y)
  | A_bool x, A_untyped y ->
      apply_cmp cmp (Bool.compare x (untyped_to_bool y))
  | (A_str _ | A_bool _ | A_int _ | A_float _), _ ->
      Err.raisef "cannot compare %s with %s" (atomic_to_string a)
        (atomic_to_string b)

and untyped_to_bool s =
  match String.trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | s -> Err.raisef "cannot cast %S to xs:boolean" s

type arith =
  | Add
  | Sub
  | Mul
  | Div
  | Idiv
  | Mod

let arithmetic op a b =
  let a = to_number a and b = to_number b in
  match (a, b) with
  | A_int x, A_int y -> (
      match op with
      | Add -> A_int (Int64.add x y)
      | Sub -> A_int (Int64.sub x y)
      | Mul -> A_int (Int64.mul x y)
      | Div ->
          if y <> 0L && Int64.rem x y = 0L then A_int (Int64.div x y)
          else if y = 0L then Err.raisef "division by zero"
          else A_float (Int64.to_float x /. Int64.to_float y)
      | Idiv ->
          if y = 0L then Err.raisef "integer division by zero"
          else A_int (Int64.div x y)
      | Mod ->
          if y = 0L then Err.raisef "modulo by zero" else A_int (Int64.rem x y))
  | _ ->
      let x = match a with A_int i -> Int64.to_float i | A_float f -> f | _ -> assert false in
      let y = match b with A_int i -> Int64.to_float i | A_float f -> f | _ -> assert false in
      (match op with
      | Add -> A_float (x +. y)
      | Sub -> A_float (x -. y)
      | Mul -> A_float (x *. y)
      | Div -> A_float (x /. y)
      | Idiv ->
          if y = 0.0 then Err.raisef "integer division by zero"
          else A_int (Int64.of_float (Float.trunc (x /. y)))
      | Mod -> A_float (Float.rem x y))

let negate a =
  match to_number a with
  | A_int i -> A_int (Int64.neg i)
  | A_float f -> A_float (-.f)
  | _ -> assert false

let effective_boolean_value coll items =
  match items with
  | [] -> false
  | (Item.Node _ | Item.Attribute _) :: _ -> true
  | [ Item.Bool b ] -> b
  | [ Item.Int i ] -> i <> 0L
  | [ Item.Float f ] -> not (f = 0.0 || Float.is_nan f)
  | [ Item.Str s ] -> String.length s > 0
  | items ->
      Err.raisef
        "effective boolean value undefined for a %d-item atomic sequence (%s)"
        (List.length items)
        (String.concat ", " (List.map (string_value coll) items))
