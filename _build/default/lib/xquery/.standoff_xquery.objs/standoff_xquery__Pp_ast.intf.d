lib/xquery/pp_ast.mli: Ast Format
