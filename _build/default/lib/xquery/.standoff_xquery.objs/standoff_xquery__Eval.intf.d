lib/xquery/eval.mli: Ast Hashtbl Standoff Standoff_relalg Standoff_store Standoff_util
