lib/xquery/engine.ml: Ast Err Eval Fun Hashtbl List Option Parse Pp_ast Serialize Standoff Standoff_relalg Standoff_store Standoff_util String
