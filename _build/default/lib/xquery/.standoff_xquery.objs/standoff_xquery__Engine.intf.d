lib/xquery/engine.mli: Standoff Standoff_relalg Standoff_store Standoff_util
