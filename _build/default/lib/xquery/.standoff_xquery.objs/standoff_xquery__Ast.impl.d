lib/xquery/ast.ml: List Set Standoff Standoff_xpath String
