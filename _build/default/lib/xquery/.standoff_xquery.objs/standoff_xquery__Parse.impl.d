lib/xquery/parse.ml: Ast Buffer Char Lexer List Printf Standoff Standoff_xpath String
