lib/xquery/lexer.mli:
