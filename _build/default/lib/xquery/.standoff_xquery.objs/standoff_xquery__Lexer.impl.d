lib/xquery/lexer.ml: Buffer Int64 Printf String
