lib/xquery/atomic.mli: Standoff_relalg Standoff_store
