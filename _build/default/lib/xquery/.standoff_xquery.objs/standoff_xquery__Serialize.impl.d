lib/xquery/serialize.ml: Atomic Buffer List Printf Standoff_relalg Standoff_store Standoff_xml
