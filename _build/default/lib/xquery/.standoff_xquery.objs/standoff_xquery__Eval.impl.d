lib/xquery/eval.ml: Array Ast Atomic Buffer Err Float Fun Hashtbl Int64 List Option Printf Standoff Standoff_interval Standoff_relalg Standoff_store Standoff_util Standoff_xml Standoff_xpath String
