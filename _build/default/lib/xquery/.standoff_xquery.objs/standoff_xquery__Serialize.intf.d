lib/xquery/serialize.mli: Standoff_relalg Standoff_store
