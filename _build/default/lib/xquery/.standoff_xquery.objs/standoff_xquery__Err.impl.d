lib/xquery/err.ml: Printf
