lib/xquery/atomic.ml: Bool Err Float Int64 List Option Printf Standoff_relalg Standoff_store String
