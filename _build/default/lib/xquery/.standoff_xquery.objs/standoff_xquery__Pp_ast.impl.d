lib/xquery/pp_ast.ml: Ast Buffer Format Int64 List Printf Standoff Standoff_xpath String
