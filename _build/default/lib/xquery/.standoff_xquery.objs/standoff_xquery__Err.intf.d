lib/xquery/err.mli:
