type token =
  | Int of int64
  | Float of float
  | String of string
  | Name of string
  | Var of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Semicolon
  | Assign
  | Slash
  | Dslash
  | Axis_sep
  | At
  | Star
  | Dot
  | Dotdot
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Bar
  | Eof

exception Syntax_error of { line : int; col : int; msg : string }

type t = {
  src : string;
  mutable off : int;
  mutable last : int;
}

let create src = { src; off = 0; last = 0 }
let last_start lx = lx.last
let seek lx off = lx.off <- off
let at_eof lx = lx.off >= String.length lx.src
let peek_char lx = if at_eof lx then '\000' else lx.src.[lx.off]

let peek_char2 lx =
  if lx.off + 1 >= String.length lx.src then '\000' else lx.src.[lx.off + 1]

let advance_char lx = if not (at_eof lx) then lx.off <- lx.off + 1

let line_col lx off =
  let line = ref 1 and bol = ref 0 in
  for i = 0 to min (off - 1) (String.length lx.src - 1) do
    if lx.src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, off - !bol + 1)

let error_at lx off msg =
  let line, col = line_col lx off in
  raise (Syntax_error { line; col; msg })

let error lx msg = error_at lx lx.off msg

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* XQuery comments (: ... :) nest. *)
let rec skip_ws_comments lx =
  while (not (at_eof lx)) && is_ws (peek_char lx) do
    advance_char lx
  done;
  if peek_char lx = '(' && peek_char2 lx = ':' then begin
    let start = lx.off in
    advance_char lx;
    advance_char lx;
    let depth = ref 1 in
    while !depth > 0 do
      if at_eof lx then error_at lx start "unterminated comment";
      if peek_char lx = '(' && peek_char2 lx = ':' then begin
        incr depth;
        advance_char lx;
        advance_char lx
      end
      else if peek_char lx = ':' && peek_char2 lx = ')' then begin
        decr depth;
        advance_char lx;
        advance_char lx
      end
      else advance_char lx
    done;
    skip_ws_comments lx
  end

let scan_name lx =
  let start = lx.off in
  while (not (at_eof lx)) && is_name_char (peek_char lx) do
    advance_char lx
  done;
  (* One optional ':' for a QName prefix, but not '::' (axis separator)
     and not ':=' (assignment). *)
  if
    peek_char lx = ':'
    && is_name_start (peek_char2 lx)
    && lx.off + 1 < String.length lx.src
  then begin
    advance_char lx;
    while (not (at_eof lx)) && is_name_char (peek_char lx) do
      advance_char lx
    done
  end;
  String.sub lx.src start (lx.off - start)

let scan_number lx =
  let start = lx.off in
  while is_digit (peek_char lx) do
    advance_char lx
  done;
  let is_float = ref false in
  if peek_char lx = '.' && is_digit (peek_char2 lx) then begin
    is_float := true;
    advance_char lx;
    while is_digit (peek_char lx) do
      advance_char lx
    done
  end;
  if peek_char lx = 'e' || peek_char lx = 'E' then begin
    is_float := true;
    advance_char lx;
    if peek_char lx = '+' || peek_char lx = '-' then advance_char lx;
    while is_digit (peek_char lx) do
      advance_char lx
    done
  end;
  let text = String.sub lx.src start (lx.off - start) in
  if !is_float then Float (float_of_string text)
  else
    match Int64.of_string_opt text with
    | Some i -> Int i
    | None -> error_at lx start (Printf.sprintf "integer literal %s overflows" text)

let scan_string lx quote =
  advance_char lx;
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_eof lx then error lx "unterminated string literal"
    else
      let c = peek_char lx in
      if c = quote then begin
        advance_char lx;
        (* A doubled quote escapes itself. *)
        if peek_char lx = quote then begin
          Buffer.add_char buf quote;
          advance_char lx;
          loop ()
        end
      end
      else begin
        Buffer.add_char buf c;
        advance_char lx;
        loop ()
      end
  in
  loop ();
  String (Buffer.contents buf)

let next lx =
  skip_ws_comments lx;
  lx.last <- lx.off;
  if at_eof lx then Eof
  else
    let c = peek_char lx in
    match c with
    | '(' ->
        advance_char lx;
        Lparen
    | ')' ->
        advance_char lx;
        Rparen
    | '[' ->
        advance_char lx;
        Lbracket
    | ']' ->
        advance_char lx;
        Rbracket
    | '{' ->
        advance_char lx;
        Lbrace
    | '}' ->
        advance_char lx;
        Rbrace
    | ',' ->
        advance_char lx;
        Comma
    | ';' ->
        advance_char lx;
        Semicolon
    | '@' ->
        advance_char lx;
        At
    | '*' ->
        advance_char lx;
        Star
    | '+' ->
        advance_char lx;
        Plus
    | '-' ->
        advance_char lx;
        Minus
    | '|' ->
        advance_char lx;
        Bar
    | '=' ->
        advance_char lx;
        Eq
    | '!' ->
        advance_char lx;
        if peek_char lx = '=' then begin
          advance_char lx;
          Ne
        end
        else error lx "expected '=' after '!'"
    | '<' ->
        advance_char lx;
        if peek_char lx = '=' then begin
          advance_char lx;
          Le
        end
        else Lt
    | '>' ->
        advance_char lx;
        if peek_char lx = '=' then begin
          advance_char lx;
          Ge
        end
        else Gt
    | '/' ->
        advance_char lx;
        if peek_char lx = '/' then begin
          advance_char lx;
          Dslash
        end
        else Slash
    | ':' ->
        advance_char lx;
        if peek_char lx = ':' then begin
          advance_char lx;
          Axis_sep
        end
        else if peek_char lx = '=' then begin
          advance_char lx;
          Assign
        end
        else error lx "unexpected ':'"
    | '.' ->
        advance_char lx;
        if peek_char lx = '.' then begin
          advance_char lx;
          Dotdot
        end
        else Dot
    | '$' ->
        advance_char lx;
        if not (is_name_start (peek_char lx)) then
          error lx "expected a variable name after '$'";
        Var (scan_name lx)
    | '"' | '\'' -> scan_string lx c
    | c when is_digit c -> scan_number lx
    | c when is_name_start c -> Name (scan_name lx)
    | c -> error lx (Printf.sprintf "unexpected character %C" c)

let token_to_string = function
  | Int i -> Int64.to_string i
  | Float f -> string_of_float f
  | String s -> Printf.sprintf "%S" s
  | Name n -> n
  | Var v -> "$" ^ v
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Comma -> ","
  | Semicolon -> ";"
  | Assign -> ":="
  | Slash -> "/"
  | Dslash -> "//"
  | Axis_sep -> "::"
  | At -> "@"
  | Star -> "*"
  | Dot -> "."
  | Dotdot -> ".."
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Bar -> "|"
  | Eof -> "<eof>"
