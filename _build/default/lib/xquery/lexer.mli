(** Tokenizer for the XQuery subset.

    Direct element constructors make XQuery impossible to tokenize
    context-free (['<'] is either a comparison or markup), so the
    lexer exposes its cursor: the parser rewinds to a token's start
    offset and switches to character-level scanning when it decides a
    constructor begins.  XQuery comments [(: ... :)] nest and are
    skipped as whitespace. *)

type token =
  | Int of int64
  | Float of float
  | String of string      (** quoted literal, escapes decoded *)
  | Name of string        (** NCName or QName, may contain '-' and '.' *)
  | Var of string         (** [$name], payload without the '$' *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Semicolon
  | Assign                (** [:=] *)
  | Slash
  | Dslash                (** [//] *)
  | Axis_sep              (** [::] *)
  | At
  | Star
  | Dot
  | Dotdot
  | Eq
  | Ne                    (** [!=] *)
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Bar
  | Eof

exception Syntax_error of { line : int; col : int; msg : string }

type t

(** [create src] tokenizes [src]. *)
val create : string -> t

(** [next lx] consumes and returns the next token. *)
val next : t -> token

(** [last_start lx] is the byte offset at which the most recently
    returned token began — the rewind point for constructor
    parsing. *)
val last_start : t -> int

(** [seek lx off] repositions the cursor (invalidates lookahead kept by
    the caller). *)
val seek : t -> int -> unit

(** Character-level access for constructor scanning. *)

val peek_char : t -> char
(** ['\000'] at end of input. *)

val peek_char2 : t -> char
val advance_char : t -> unit
val at_eof : t -> bool

(** [error lx msg] raises {!Syntax_error} at the current position. *)
val error : t -> string -> 'a

(** [error_at lx off msg] raises {!Syntax_error} at offset [off]. *)
val error_at : t -> int -> string -> 'a

(** [token_to_string tok] for error messages. *)
val token_to_string : token -> string
