(** Serialization of query results. *)

(** [item coll i] serializes one item: nodes as XML markup, attributes
    as [name="value"], atomics in their canonical lexical form. *)
val item : Standoff_store.Collection.t -> Standoff_relalg.Item.t -> string

(** [sequence coll items] serializes a result sequence: adjacent atomic
    values are separated by a single space, nodes by newlines. *)
val sequence :
  Standoff_store.Collection.t -> Standoff_relalg.Item.t list -> string
