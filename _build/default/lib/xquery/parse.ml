module L = Lexer

type state = {
  lx : L.t;
  mutable tok : L.token;
  mutable tok_off : int;  (* offset where [tok] starts *)
  mutable fresh : int;    (* counter for generated variable names *)
}

let advance st =
  st.tok <- L.next st.lx;
  st.tok_off <- L.last_start st.lx

let make src =
  let lx = L.create src in
  let st = { lx; tok = L.Eof; tok_off = 0; fresh = 0 } in
  advance st;
  st

let fail st msg = L.error_at st.lx st.tok_off msg

let expect st tok =
  if st.tok = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (L.token_to_string tok)
         (L.token_to_string st.tok))

let expect_name st =
  match st.tok with
  | L.Name n ->
      advance st;
      n
  | t -> fail st (Printf.sprintf "expected a name, found %s" (L.token_to_string t))

let expect_var st =
  match st.tok with
  | L.Var v ->
      advance st;
      v
  | t ->
      fail st
        (Printf.sprintf "expected a variable, found %s" (L.token_to_string t))

let expect_string st =
  match st.tok with
  | L.String s ->
      advance st;
      s
  | t ->
      fail st
        (Printf.sprintf "expected a string literal, found %s"
           (L.token_to_string t))

let is_kw st kw = match st.tok with L.Name n -> String.equal n kw | _ -> false

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let fresh_var st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "#%s%d" prefix st.fresh

(* ------------------------------------------------------------------ *)
(* Node tests and axes                                                *)

let kind_test_names =
  [ "node"; "text"; "comment"; "processing-instruction"; "element";
    "document-node" ]

let parse_kind_test st name =
  expect st L.Lparen;
  let arg =
    match st.tok with
    | L.Name n ->
        advance st;
        Some n
    | L.String s ->
        advance st;
        Some s
    | _ -> None
  in
  expect st L.Rparen;
  match (name, arg) with
  | "node", None -> Standoff_xpath.Node_test.Kind_node
  | "text", None -> Standoff_xpath.Node_test.Kind_text
  | "comment", None -> Standoff_xpath.Node_test.Kind_comment
  | "processing-instruction", arg -> Standoff_xpath.Node_test.Kind_pi arg
  | "element", arg -> Standoff_xpath.Node_test.Kind_element arg
  | "document-node", None -> Standoff_xpath.Node_test.Kind_document
  | name, Some _ -> fail st (Printf.sprintf "%s() takes no argument" name)
  | _, None -> assert false

(* A node test in step position: '*', a kind test, or a name. *)
let parse_node_test st =
  match st.tok with
  | L.Star ->
      advance st;
      Standoff_xpath.Node_test.Any
  | L.Name n when List.mem n kind_test_names ->
      advance st;
      parse_kind_test st n
  | L.Name n ->
      advance st;
      Standoff_xpath.Node_test.Name n
  | t ->
      fail st (Printf.sprintf "expected a node test, found %s" (L.token_to_string t))

let axis_of_name name =
  match Standoff.Op.of_string_opt name with
  | Some op -> Some (Ast.Standoff op)
  | None -> (
      match name with
      | "attribute" -> Some Ast.Attribute
      | "self" | "child" | "descendant" | "descendant-or-self" | "parent"
      | "ancestor" | "ancestor-or-self" | "following" | "preceding"
      | "following-sibling" | "preceding-sibling" ->
          Some (Ast.Std (Standoff_xpath.Axes.axis_of_string name))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)

let rec parse_expr_seq st =
  let first = parse_expr_single st in
  if st.tok = L.Comma then begin
    let items = ref [ first ] in
    while st.tok = L.Comma do
      advance st;
      items := parse_expr_single st :: !items
    done;
    Ast.Sequence (List.rev !items)
  end
  else first

and parse_expr_single st =
  if is_kw st "for" || is_kw st "let" then parse_flwor st
  else if is_kw st "some" || is_kw st "every" then parse_quantified st
  else if is_kw st "if" then parse_if st
  else parse_or st

(* FLWOR: parse the clause list, then fold into nested For/Let/Where
   around the return expression. *)
and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    if is_kw st "for" then begin
      advance st;
      let rec vars () =
        let var = expect_var st in
        let pos_var =
          if eat_kw st "at" then Some (expect_var st) else None
        in
        if not (eat_kw st "in") then fail st "expected 'in'";
        let source = parse_expr_single st in
        clauses := `For (var, pos_var, source) :: !clauses;
        if st.tok = L.Comma then begin
          advance st;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
    else if is_kw st "let" then begin
      advance st;
      let rec vars () =
        let var = expect_var st in
        expect st L.Assign;
        let value = parse_expr_single st in
        clauses := `Let (var, value) :: !clauses;
        if st.tok = L.Comma then begin
          advance st;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
  in
  clause_loop ();
  let where = if eat_kw st "where" then Some (parse_expr_single st) else None in
  let order_by =
    if eat_kw st "order" then begin
      if not (eat_kw st "by") then fail st "expected 'by' after 'order'";
      let rec specs acc =
        let key = parse_expr_single st in
        let descending =
          if eat_kw st "descending" then true
          else begin
            ignore (eat_kw st "ascending");
            false
          end
        in
        (* "empty greatest/least" is accepted and ignored (we always
           sort empty keys first, the XQuery default). *)
        if eat_kw st "empty" then
          if not (eat_kw st "greatest" || eat_kw st "least") then
            fail st "expected 'greatest' or 'least'";
        let acc = { Ast.key; descending } :: acc in
        if st.tok = L.Comma then begin
          advance st;
          specs acc
        end
        else List.rev acc
      in
      specs []
    end
    else []
  in
  if not (eat_kw st "return") then fail st "expected 'return'";
  let body = parse_expr_single st in
  let body =
    match where with
    | Some cond -> Ast.Where { cond; body }
    | None -> body
  in
  (* The order-by keys attach to the innermost for clause; sorting thus
     applies per tuple of that clause (exact for the ubiquitous
     single-for FLWOR; see the engine documentation for the multi-for
     caveat). *)
  if order_by <> [] && not (List.exists (function `For _ -> true | `Let _ -> false) !clauses)
  then fail st "'order by' requires a 'for' clause";
  let consumed_order = ref false in
  List.fold_left
    (fun body clause ->
      match clause with
      | `For (var, pos_var, source) ->
          let order_by =
            if !consumed_order then []
            else begin
              consumed_order := true;
              order_by
            end
          in
          Ast.For { var; pos_var; source; order_by; body }
      | `Let (var, value) -> Ast.Let { var; value; body })
    body !clauses

and parse_quantified st =
  let universal = is_kw st "every" in
  advance st;
  let var = expect_var st in
  if not (eat_kw st "in") then fail st "expected 'in'";
  let source = parse_expr_single st in
  if not (eat_kw st "satisfies") then fail st "expected 'satisfies'";
  let satisfies = parse_expr_single st in
  Ast.Quantified { universal; var; source; satisfies }

and parse_if st =
  advance st;
  expect st L.Lparen;
  let cond = parse_expr_seq st in
  expect st L.Rparen;
  if not (eat_kw st "then") then fail st "expected 'then'";
  let then_ = parse_expr_single st in
  if not (eat_kw st "else") then fail st "expected 'else'";
  let else_ = parse_expr_single st in
  Ast.If { cond; then_; else_ }

and parse_or st =
  let lhs = ref (parse_and st) in
  while is_kw st "or" do
    advance st;
    lhs := Ast.Binop (Ast.Op_or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_comparison st) in
  while is_kw st "and" do
    advance st;
    lhs := Ast.Binop (Ast.Op_and, !lhs, parse_comparison st)
  done;
  !lhs

and parse_comparison st =
  let lhs = parse_range st in
  let op =
    match st.tok with
    | L.Eq -> Some Ast.Op_eq
    | L.Ne -> Some Ast.Op_ne
    | L.Lt -> Some Ast.Op_lt
    | L.Le -> Some Ast.Op_le
    | L.Gt -> Some Ast.Op_gt
    | L.Ge -> Some Ast.Op_ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_range st)

and parse_range st =
  let lhs = parse_additive st in
  if is_kw st "to" then begin
    advance st;
    Ast.Binop (Ast.Op_to, lhs, parse_additive st)
  end
  else lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match st.tok with
    | L.Plus ->
        advance st;
        lhs := Ast.Binop (Ast.Op_add, !lhs, parse_multiplicative st);
        loop ()
    | L.Minus ->
        advance st;
        lhs := Ast.Binop (Ast.Op_sub, !lhs, parse_multiplicative st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_union st) in
  let rec loop () =
    if st.tok = L.Star then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_mul, !lhs, parse_union st);
      loop ()
    end
    else if is_kw st "div" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_div, !lhs, parse_union st);
      loop ()
    end
    else if is_kw st "idiv" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_idiv, !lhs, parse_union st);
      loop ()
    end
    else if is_kw st "mod" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_mod, !lhs, parse_union st);
      loop ()
    end
  in
  loop ();
  !lhs

and parse_union st =
  let lhs = ref (parse_intersect_except st) in
  let rec loop () =
    if st.tok = L.Bar then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_union, !lhs, parse_intersect_except st);
      loop ()
    end
    else if is_kw st "union" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_union, !lhs, parse_intersect_except st);
      loop ()
    end
  in
  loop ();
  !lhs

and parse_intersect_except st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    if is_kw st "intersect" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_intersect, !lhs, parse_unary st);
      loop ()
    end
    else if is_kw st "except" then begin
      advance st;
      lhs := Ast.Binop (Ast.Op_except, !lhs, parse_unary st);
      loop ()
    end
  in
  loop ();
  !lhs

and parse_unary st =
  if st.tok = L.Minus then begin
    advance st;
    Ast.Unary_minus (parse_unary st)
  end
  else parse_path st

(* ------------------------------------------------------------------ *)
(* Paths                                                              *)

and parse_path st =
  match st.tok with
  | L.Slash ->
      advance st;
      let root = Ast.Call { name = "root"; args = [ Ast.Context_item ] } in
      if starts_step st then parse_rel_path st root else root
  | L.Dslash ->
      advance st;
      let root = Ast.Call { name = "root"; args = [ Ast.Context_item ] } in
      let dos =
        Ast.Step
          {
            input = root;
            axis = Ast.Std Standoff_xpath.Axes.Descendant_or_self;
            test = Standoff_xpath.Node_test.Kind_node;
          }
      in
      parse_rel_path st dos
  | _ ->
      let first = parse_step_expr st None in
      parse_rel_path_rest st first

and starts_step st =
  match st.tok with
  | L.Name _ | L.Star | L.At | L.Dot | L.Dotdot | L.Var _ | L.Lparen
  | L.String _ | L.Int _ | L.Float _ ->
      true
  | _ -> false

and parse_rel_path st input =
  let first = parse_step_expr st (Some input) in
  parse_rel_path_rest st first

and parse_rel_path_rest st lhs =
  match st.tok with
  | L.Slash ->
      advance st;
      let next = parse_step_expr st (Some lhs) in
      parse_rel_path_rest st next
  | L.Dslash ->
      advance st;
      let dos =
        Ast.Step
          {
            input = lhs;
            axis = Ast.Std Standoff_xpath.Axes.Descendant_or_self;
            test = Standoff_xpath.Node_test.Kind_node;
          }
      in
      let next = parse_step_expr st (Some dos) in
      parse_rel_path_rest st next
  | _ -> lhs

(* One step of a relative path.  [input = None] means the step opens
   the path (context is the focus); axis steps then run from the
   context item. *)
and parse_step_expr st input =
  let input_expr () =
    match input with Some e -> e | None -> Ast.Context_item
  in
  match st.tok with
  | L.At ->
      advance st;
      let test = parse_node_test st in
      finish_axis_step st ~input:(input_expr ()) ~axis:Ast.Attribute ~test
  | L.Dotdot ->
      advance st;
      finish_axis_step st ~input:(input_expr ())
        ~axis:(Ast.Std Standoff_xpath.Axes.Parent)
        ~test:Standoff_xpath.Node_test.Kind_node
  | L.Star ->
      advance st;
      finish_axis_step st ~input:(input_expr ())
        ~axis:(Ast.Std Standoff_xpath.Axes.Child)
        ~test:Standoff_xpath.Node_test.Any
  | L.Name name -> (
      (* Could be: axis::test, kind test, function call, name test, or
         a keyword-ish primary.  Peek at what follows the name. *)
      advance st;
      match st.tok with
      | L.Axis_sep -> (
          advance st;
          match axis_of_name name with
          | Some axis ->
              let test = parse_node_test st in
              finish_axis_step st ~input:(input_expr ()) ~axis ~test
          | None -> fail st (Printf.sprintf "unknown axis %s" name))
      | L.Lparen when List.mem name kind_test_names ->
          let test = parse_kind_test st name in
          finish_axis_step st ~input:(input_expr ())
            ~axis:(Ast.Std Standoff_xpath.Axes.Child)
            ~test
      | L.Lparen ->
          let call = parse_call st name in
          let call = parse_predicates st call in
          (* In the middle of a path a function call is evaluated per
             context item ([E/f(...)]); at the head it stands alone. *)
          (match input with
          | None -> call
          | Some input -> Ast.Path_map { input; body = call })
      | _ ->
          (* Plain name test on the child axis. *)
          finish_axis_step st ~input:(input_expr ())
            ~axis:(Ast.Std Standoff_xpath.Axes.Child)
            ~test:(Standoff_xpath.Node_test.Name name))
  | _ ->
      let prim = parse_primary st in
      let prim = parse_predicates st prim in
      (match input with
      | None -> prim
      | Some input -> Ast.Path_map { input; body = prim })

(* Attach predicates to an axis step, desugaring to per-context-node
   filtering when predicates are present. *)
and finish_axis_step st ~input ~axis ~test =
  if st.tok <> L.Lbracket then Ast.Step { input; axis; test }
  else begin
    let dot = fresh_var st "dot" in
    let step = Ast.Step { input = Ast.Var dot; axis; test } in
    let filtered = parse_predicates st step in
    Ast.Call
      {
        name = "#ddo";
        args =
          [
            Ast.For
              { var = dot; pos_var = None; source = input; order_by = [];
                body = filtered };
          ];
      }
  end

and parse_predicates st expr =
  let acc = ref expr in
  while st.tok = L.Lbracket do
    advance st;
    let predicate = parse_expr_seq st in
    expect st L.Rbracket;
    acc := Ast.Filter { input = !acc; predicate }
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Primaries                                                          *)

and parse_call st name =
  (* The '(' is current. *)
  expect st L.Lparen;
  let args = ref [] in
  if st.tok <> L.Rparen then begin
    args := [ parse_expr_single st ];
    while st.tok = L.Comma do
      advance st;
      args := parse_expr_single st :: !args
    done
  end;
  expect st L.Rparen;
  Ast.Call { name; args = List.rev !args }

and parse_primary st =
  match st.tok with
  | L.Int i ->
      advance st;
      Ast.Literal (Ast.Lit_int i)
  | L.Float f ->
      advance st;
      Ast.Literal (Ast.Lit_float f)
  | L.String s ->
      advance st;
      Ast.Literal (Ast.Lit_string s)
  | L.Var v ->
      advance st;
      Ast.Var v
  | L.Dot ->
      advance st;
      Ast.Context_item
  | L.Lparen ->
      advance st;
      if st.tok = L.Rparen then begin
        advance st;
        Ast.Sequence []
      end
      else begin
        let e = parse_expr_seq st in
        expect st L.Rparen;
        e
      end
  | L.Lt -> parse_constructor st
  | t -> fail st (Printf.sprintf "unexpected %s" (L.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Direct element constructors                                        *)

(* The lexer cannot tokenize markup; rewind to the '<' and scan
   characters, recursing into the token-level parser inside enclosed
   expressions. *)
and parse_constructor st =
  L.seek st.lx st.tok_off;
  (* consume '<' *)
  L.advance_char st.lx;
  let ctor = scan_element st in
  advance st;
  parse_predicates st ctor

and scan_name_raw st =
  let buf = Buffer.create 8 in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  if not (is_name_char (L.peek_char st.lx)) then
    L.error st.lx "expected a name in constructor";
  while is_name_char (L.peek_char st.lx) do
    Buffer.add_char buf (L.peek_char st.lx);
    L.advance_char st.lx
  done;
  Buffer.contents buf

and skip_raw_ws st =
  while
    match L.peek_char st.lx with
    | ' ' | '\t' | '\r' | '\n' -> true
    | _ -> false
  do
    L.advance_char st.lx
  done

(* Decode the five predefined entities and character references in
   constructor text. *)
and scan_reference st buf =
  L.advance_char st.lx;
  let name = Buffer.create 8 in
  while L.peek_char st.lx <> ';' && not (L.at_eof st.lx) do
    Buffer.add_char name (L.peek_char st.lx);
    L.advance_char st.lx
  done;
  if L.at_eof st.lx then L.error st.lx "unterminated entity reference";
  L.advance_char st.lx;
  match Buffer.contents name with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | s when String.length s > 1 && s.[0] = '#' ->
      let code =
        try
          if s.[1] = 'x' || s.[1] = 'X' then
            int_of_string ("0x" ^ String.sub s 2 (String.length s - 2))
          else int_of_string (String.sub s 1 (String.length s - 1))
        with Failure _ -> L.error st.lx "invalid character reference"
      in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else L.error st.lx "character references above 127 unsupported here"
  | s -> L.error st.lx (Printf.sprintf "unknown entity &%s;" s)

(* Enclosed expression: '{' Expr '}' parsed at token level, then the
   raw scan resumes right after the closing brace. *)
and scan_enclosed st =
  L.advance_char st.lx;
  advance st;
  let e = parse_expr_seq st in
  if st.tok <> L.Rbrace then fail st "expected '}' in constructor";
  (* Reposition the raw cursor right after the '}'. *)
  L.seek st.lx (st.tok_off + 1);
  e

and scan_attr_value st quote =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Ast.Fixed (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    let c = L.peek_char st.lx in
    if L.at_eof st.lx then L.error st.lx "unterminated attribute value"
    else if c = quote then L.advance_char st.lx
    else if c = '{' then
      if L.peek_char2 st.lx = '{' then begin
        Buffer.add_char buf '{';
        L.advance_char st.lx;
        L.advance_char st.lx;
        loop ()
      end
      else begin
        flush ();
        parts := Ast.Enclosed (scan_enclosed st) :: !parts;
        loop ()
      end
    else if c = '}' && L.peek_char2 st.lx = '}' then begin
      Buffer.add_char buf '}';
      L.advance_char st.lx;
      L.advance_char st.lx;
      loop ()
    end
    else if c = '&' then begin
      scan_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf c;
      L.advance_char st.lx;
      loop ()
    end
  in
  loop ();
  flush ();
  List.rev !parts

and scan_attributes st =
  let attrs = ref [] in
  let rec loop () =
    skip_raw_ws st;
    let c = L.peek_char st.lx in
    if c = '/' || c = '>' then ()
    else begin
      let name = scan_name_raw st in
      skip_raw_ws st;
      if L.peek_char st.lx <> '=' then L.error st.lx "expected '='";
      L.advance_char st.lx;
      skip_raw_ws st;
      let quote = L.peek_char st.lx in
      if quote <> '"' && quote <> '\'' then
        L.error st.lx "expected a quoted attribute value";
      L.advance_char st.lx;
      attrs := (name, scan_attr_value st quote) :: !attrs;
      loop ()
    end
  in
  loop ();
  List.rev !attrs

and scan_element st =
  let tag = scan_name_raw st in
  let attrs = scan_attributes st in
  skip_raw_ws st;
  if L.peek_char st.lx = '/' then begin
    L.advance_char st.lx;
    if L.peek_char st.lx <> '>' then L.error st.lx "expected '>'";
    L.advance_char st.lx;
    Ast.Elem_ctor { tag; attrs; content = [] }
  end
  else begin
    if L.peek_char st.lx <> '>' then L.error st.lx "expected '>'";
    L.advance_char st.lx;
    let content = ref [] in
    let buf = Buffer.create 32 in
    let flush () =
      if Buffer.length buf > 0 then begin
        content := Ast.Fixed (Buffer.contents buf) :: !content;
        Buffer.clear buf
      end
    in
    let rec loop () =
      if L.at_eof st.lx then L.error st.lx "unterminated constructor"
      else
        let c = L.peek_char st.lx in
        if c = '<' && L.peek_char2 st.lx = '/' then begin
          L.advance_char st.lx;
          L.advance_char st.lx;
          let close = scan_name_raw st in
          skip_raw_ws st;
          if L.peek_char st.lx <> '>' then L.error st.lx "expected '>'";
          L.advance_char st.lx;
          if not (String.equal close tag) then
            L.error st.lx
              (Printf.sprintf "constructor <%s> closed by </%s>" tag close)
        end
        else if c = '<' then begin
          flush ();
          L.advance_char st.lx;
          content := Ast.Enclosed (scan_element st) :: !content;
          loop ()
        end
        else if c = '{' then
          if L.peek_char2 st.lx = '{' then begin
            Buffer.add_char buf '{';
            L.advance_char st.lx;
            L.advance_char st.lx;
            loop ()
          end
          else begin
            flush ();
            content := Ast.Enclosed (scan_enclosed st) :: !content;
            loop ()
          end
        else if c = '}' && L.peek_char2 st.lx = '}' then begin
          Buffer.add_char buf '}';
          L.advance_char st.lx;
          L.advance_char st.lx;
          loop ()
        end
        else if c = '&' then begin
          scan_reference st buf;
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          L.advance_char st.lx;
          loop ()
        end
    in
    loop ();
    flush ();
    Ast.Elem_ctor { tag; attrs; content = List.rev !content }
  end

(* ------------------------------------------------------------------ *)
(* Prolog                                                             *)

let rec parse_function_def st =
  let fn_name = expect_name st in
  expect st L.Lparen;
  let params = ref [] in
  if st.tok <> L.Rparen then begin
    let rec loop () =
      params := expect_var st :: !params;
      (* Optional "as" type annotations are accepted and ignored. *)
      if eat_kw st "as" then skip_sequence_type st;
      if st.tok = L.Comma then begin
        advance st;
        loop ()
      end
    in
    loop ()
  end;
  expect st L.Rparen;
  if eat_kw st "as" then skip_sequence_type st;
  expect st L.Lbrace;
  let fn_body = parse_expr_seq st in
  expect st L.Rbrace;
  { Ast.fn_name; fn_params = List.rev !params; fn_body }

(* Sequence types are accepted for compatibility and ignored:
   a name, optionally with (), and an occurrence indicator. *)
and skip_sequence_type st =
  (match st.tok with
  | L.Name _ ->
      advance st;
      if st.tok = L.Lparen then begin
        advance st;
        (match st.tok with L.Name _ -> advance st | _ -> ());
        expect st L.Rparen
      end
  | _ -> fail st "expected a type name after 'as'");
  match st.tok with L.Star | L.Plus -> advance st | _ -> ()

let parse_prolog st =
  let decls = ref [] in
  let rec loop () =
    if is_kw st "declare" then begin
      advance st;
      if eat_kw st "option" then begin
        let name = expect_name st in
        let value = expect_string st in
        decls := Ast.Decl_option { name; value } :: !decls
      end
      else if eat_kw st "namespace" then begin
        let prefix = expect_name st in
        expect st L.Eq;
        let uri = expect_string st in
        decls := Ast.Decl_namespace { prefix; uri } :: !decls
      end
      else if eat_kw st "function" then
        decls := Ast.Decl_function (parse_function_def st) :: !decls
      else if eat_kw st "variable" then begin
        let var = expect_var st in
        if eat_kw st "as" then skip_sequence_type st;
        expect st L.Assign;
        let value = parse_expr_single st in
        decls := Ast.Decl_variable { var; value } :: !decls
      end
      else if eat_kw st "module" then begin
        (* declare module x = "uri" — accepted and recorded as a
           namespace declaration. *)
        let prefix = expect_name st in
        expect st L.Eq;
        let uri = expect_string st in
        decls := Ast.Decl_namespace { prefix; uri } :: !decls
      end
      else fail st "unsupported declaration";
      expect st L.Semicolon;
      loop ()
    end
    else if is_kw st "import" then begin
      (* import module ... — skipped up to the ';'. *)
      while st.tok <> L.Semicolon && st.tok <> L.Eof do
        advance st
      done;
      expect st L.Semicolon;
      loop ()
    end
  in
  loop ();
  List.rev !decls

let parse_query src =
  let st = make src in
  let prolog = parse_prolog st in
  let body = parse_expr_seq st in
  if st.tok <> L.Eof then
    fail st
      (Printf.sprintf "trailing input: %s" (L.token_to_string st.tok));
  { Ast.prolog; body }

let parse_expr src =
  let q = parse_query src in
  match q.Ast.prolog with
  | [] -> q.Ast.body
  | _ -> invalid_arg "Parse.parse_expr: input has a prolog"
