(** Abstract syntax of the supported XQuery subset.

    The subset covers what the paper's queries need — FLWOR
    expressions, full axis steps including the four StandOff axes,
    predicates, general comparisons, arithmetic, direct element
    constructors, user-defined functions (Figures 2/3) and the
    [declare option] prolog — plus enough general machinery
    (if/then/else, quantified expressions, ranges) to write realistic
    applications against the engine. *)

type axis =
  | Std of Standoff_xpath.Axes.axis
  | Attribute
  | Standoff of Standoff.Op.t  (** the paper's four new axis steps *)

type literal =
  | Lit_int of int64
  | Lit_float of float
  | Lit_string of string

type binop =
  | Op_or
  | Op_and
  | Op_eq          (** general comparison [=] *)
  | Op_ne
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge
  | Op_add
  | Op_sub
  | Op_mul
  | Op_div
  | Op_idiv
  | Op_mod
  | Op_to          (** integer range [1 to 5] *)
  | Op_union       (** node sequence union [|] / [union] *)
  | Op_intersect   (** node sequence intersection *)
  | Op_except      (** node sequence difference *)

type expr =
  | Literal of literal
  | Var of string
  | Context_item                       (** [.] *)
  | Sequence of expr list              (** [(e1, e2, ...)]; [()] is empty *)
  | For of {
      var : string;
      pos_var : string option;         (** [at $p] *)
      source : expr;
      order_by : order_spec list;
          (** sort keys of the FLWOR's [order by] clause, attached to
              its innermost [for]; empty when absent *)
      body : expr;
    }
  | Let of { var : string; value : expr; body : expr }
  | Where of { cond : expr; body : expr }
  | Quantified of {
      universal : bool;                (** [every] vs [some] *)
      var : string;
      source : expr;
      satisfies : expr;
    }
  | If of { cond : expr; then_ : expr; else_ : expr }
  | Binop of binop * expr * expr
  | Unary_minus of expr
  | Step of {
      input : expr;                    (** the context expression *)
      axis : axis;
      test : Standoff_xpath.Node_test.t;
    }
  | Filter of { input : expr; predicate : expr }  (** [e[p]] *)
  | Path_map of { input : expr; body : expr }
      (** [e/body] where [body] is not an axis step: [body] is
          evaluated once per item of [e] with that item as the context
          item; node results are deduplicated in document order.
          Figure 2's trailing [/.] relies on this. *)
  | Call of { name : string; args : expr list }
  | Elem_ctor of {
      tag : string;
      attrs : (string * attr_content list) list;
      content : attr_content list;
    }

and attr_content =
  | Fixed of string
  | Enclosed of expr

and order_spec = {
  key : expr;
  descending : bool;
}

type function_def = {
  fn_name : string;
  fn_params : string list;
  fn_body : expr;
}

type prolog_decl =
  | Decl_option of { name : string; value : string }
  | Decl_namespace of { prefix : string; uri : string }
  | Decl_function of function_def
  | Decl_variable of { var : string; value : expr }

type query = {
  prolog : prolog_decl list;
  body : expr;
}

(** [free_vars e] is the set of variable names [e] references but does
    not bind — used by the evaluator to avoid lifting dead variables
    through for-loops. *)
let free_vars expr =
  let module S = Set.Make (String) in
  let rec go bound acc = function
    | Literal _ | Context_item -> acc
    | Var v -> if S.mem v bound then acc else S.add v acc
    | Sequence es -> List.fold_left (go bound) acc es
    | For { var; pos_var; source; order_by; body } ->
        let acc = go bound acc source in
        let bound = S.add var bound in
        let bound =
          match pos_var with Some p -> S.add p bound | None -> bound
        in
        let acc =
          List.fold_left (fun acc spec -> go bound acc spec.key) acc order_by
        in
        go bound acc body
    | Let { var; value; body } ->
        let acc = go bound acc value in
        go (S.add var bound) acc body
    | Where { cond; body } -> go bound (go bound acc cond) body
    | Quantified { var; source; satisfies; _ } ->
        let acc = go bound acc source in
        go (S.add var bound) acc satisfies
    | If { cond; then_; else_ } ->
        go bound (go bound (go bound acc cond) then_) else_
    | Binop (_, a, b) -> go bound (go bound acc a) b
    | Unary_minus e | Step { input = e; _ } -> go bound acc e
    | Filter { input; predicate } -> go bound (go bound acc input) predicate
    | Path_map { input; body } -> go bound (go bound acc input) body
    | Call { args; _ } -> List.fold_left (go bound) acc args
    | Elem_ctor { attrs; content; _ } ->
        let go_content acc = function
          | Fixed _ -> acc
          | Enclosed e -> go bound acc e
        in
        let acc =
          List.fold_left
            (fun acc (_, parts) -> List.fold_left go_content acc parts)
            acc attrs
        in
        List.fold_left go_content acc content
  in
  go S.empty S.empty expr |> S.elements
