(** Recursive-descent parser for the XQuery subset.

    Supported grammar (contextual keywords, XQuery 1.0 style):

    {v
    Query      ::= Prolog Expr
    Prolog     ::= ((DeclOption | DeclNamespace | DeclFunction
                    | DeclVariable | DeclModule) ";")*
    Expr       ::= ExprSingle ("," ExprSingle)*
    ExprSingle ::= FLWOR | Quantified | If | OrExpr
    FLWOR      ::= (ForClause | LetClause)+ ("where" ExprSingle)?
                   "return" ExprSingle
    Quantified ::= ("some"|"every") "$"N "in" ExprSingle
                   "satisfies" ExprSingle
    OrExpr     ::= AndExpr ("or" AndExpr)*            and so on down the
                   usual precedence chain (comparison, "to", additive,
                   multiplicative, union, unary minus)
    PathExpr   ::= ("/" RelPath?) | ("//" RelPath) | RelPath
    StepExpr   ::= AxisStep Predicate* | PostfixExpr Predicate*
    AxisStep   ::= (Axis "::")? NodeTest | "@" NodeTest | ".."
    Axis       ::= child | descendant | ... | select-narrow
                   | select-wide | reject-narrow | reject-wide
    v}

    plus direct element constructors with enclosed expressions.
    Predicated axis steps are desugared into per-context-node for-loops
    so that positional predicates keep XPath semantics under loop
    lifting. *)

(** [parse_query src] parses a complete query with prolog.
    @raise Lexer.Syntax_error on malformed input. *)
val parse_query : string -> Ast.query

(** [parse_expr src] parses a bare expression (no prolog) — convenient
    in tests. *)
val parse_expr : string -> Ast.expr
