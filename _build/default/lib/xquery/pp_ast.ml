(* The printer emits fully explicit syntax (no abbreviations, liberal
   parentheses) so that precedence never needs reconstructing.  Two
   constructs have no surface form and print as their closest
   equivalent: the internal #ddo call prints as a trailing [/.] step,
   and generated variables ("#dot1") print with a [__] prefix; both
   stabilise after one print/parse round, which is the property the
   tests check. *)

let binop_name = function
  | Ast.Op_or -> "or"
  | Ast.Op_and -> "and"
  | Ast.Op_eq -> "="
  | Ast.Op_ne -> "!="
  | Ast.Op_lt -> "<"
  | Ast.Op_le -> "<="
  | Ast.Op_gt -> ">"
  | Ast.Op_ge -> ">="
  | Ast.Op_add -> "+"
  | Ast.Op_sub -> "-"
  | Ast.Op_mul -> "*"
  | Ast.Op_div -> "div"
  | Ast.Op_idiv -> "idiv"
  | Ast.Op_mod -> "mod"
  | Ast.Op_to -> "to"
  | Ast.Op_union -> "|"
  | Ast.Op_intersect -> "intersect"
  | Ast.Op_except -> "except"

let var_name v =
  (* Generated variables carry '#', which is not lexable. *)
  String.map (function '#' -> '_' | c -> c) v

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_ctor_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '{' -> Buffer.add_string buf "{{"
      | '}' -> Buffer.add_string buf "}}"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let axis_name = function
  | Ast.Std a -> Standoff_xpath.Axes.axis_to_string a
  | Ast.Attribute -> "attribute"
  | Ast.Standoff op -> Standoff.Op.to_string op

(* Recognise the parser's desugaring of a predicated axis step —
   #ddo(for $dot in INPUT return $dot/axis::test[p]...[p]) — so it can
   be printed back in step form, keeping print/parse a fixpoint. *)
let match_predicated_step expr =
  match expr with
  | Ast.Call
      {
        name = "#ddo";
        args = [ Ast.For { var; pos_var = None; source; order_by = []; body } ];
      } ->
      let rec peel preds = function
        | Ast.Filter { input; predicate } -> peel (predicate :: preds) input
        | Ast.Step { input = Ast.Var v; axis; test } when String.equal v var ->
            Some (source, axis, test, preds)
        | _ -> None
      in
      peel [] body
  | _ -> None

let rec pp_expr fmt expr =
  match match_predicated_step expr with
  | Some (source, axis, test, preds) ->
      Format.fprintf fmt "%a/%s::%a" pp_parens source (axis_name axis)
        Standoff_xpath.Node_test.pp test;
      List.iter (fun p -> Format.fprintf fmt "[%a]" pp_expr p) preds
  | None -> pp_expr_plain fmt expr

and pp_expr_plain fmt expr =
  match expr with
  | Ast.Literal (Ast.Lit_int i) -> Format.fprintf fmt "%Ld" i
  | Ast.Literal (Ast.Lit_float f) ->
      (* Keep a lexical form the lexer reads back as the same float. *)
      let s = Printf.sprintf "%.17g" f in
      let is_float_literal = String.exists (fun c -> c = '.' || c = 'e') s in
      Format.pp_print_string fmt (if is_float_literal then s else s ^ ".0")
  | Ast.Literal (Ast.Lit_string s) -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | Ast.Var v -> Format.fprintf fmt "$%s" (var_name v)
  | Ast.Context_item -> Format.pp_print_string fmt "."
  | Ast.Sequence [] -> Format.pp_print_string fmt "()"
  | Ast.Sequence es ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp_expr)
        es
  | Ast.For { var; pos_var; source; order_by; body } ->
      Format.fprintf fmt "@[<hv 2>for $%s%t in %a%t@ return %a@]"
        (var_name var)
        (fun fmt ->
          match pos_var with
          | Some p -> Format.fprintf fmt " at $%s" (var_name p)
          | None -> ())
        pp_parens source
        (fun fmt ->
          match order_by with
          | [] -> ()
          | specs ->
              Format.fprintf fmt "@ order by %a"
                (Format.pp_print_list
                   ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
                   (fun fmt spec ->
                     Format.fprintf fmt "%a%s" pp_parens spec.Ast.key
                       (if spec.Ast.descending then " descending" else "")))
                specs)
        pp_expr body
  | Ast.Let { var; value; body } ->
      Format.fprintf fmt "@[<hv 2>let $%s := %a@ return %a@]" (var_name var)
        pp_parens value pp_expr body
  | Ast.Where { cond; body } ->
      (* [where] exists only inside FLWOR; standalone it prints as an
         equivalent conditional. *)
      Format.fprintf fmt "@[<hv 2>if (%a)@ then %a@ else ()@]" pp_expr cond
        pp_expr body
  | Ast.Quantified { universal; var; source; satisfies } ->
      Format.fprintf fmt "@[<hv 2>%s $%s in %a@ satisfies %a@]"
        (if universal then "every" else "some")
        (var_name var) pp_parens source pp_expr satisfies
  | Ast.If { cond; then_; else_ } ->
      Format.fprintf fmt "@[<hv 2>if (%a)@ then %a@ else %a@]" pp_expr cond
        pp_parens then_ pp_parens else_
  | Ast.Binop (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_parens a (binop_name op) pp_parens b
  | Ast.Unary_minus e -> Format.fprintf fmt "-%a" pp_parens e
  | Ast.Step { input; axis; test } ->
      Format.fprintf fmt "%a/%s::%a" pp_parens input (axis_name axis)
        Standoff_xpath.Node_test.pp test
  | Ast.Filter { input; predicate } ->
      Format.fprintf fmt "%a[%a]" pp_parens input pp_expr predicate
  | Ast.Path_map { input; body = Ast.Context_item } ->
      Format.fprintf fmt "%a/." pp_parens input
  | Ast.Path_map { input; body } ->
      Format.fprintf fmt "%a/%a" pp_parens input pp_parens body
  | Ast.Call { name = "#ddo"; args = [ arg ] } ->
      Format.fprintf fmt "%a/." pp_parens arg
  | Ast.Call { name; args } ->
      Format.fprintf fmt "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp_expr)
        args
  | Ast.Elem_ctor { tag; attrs; content } ->
      Format.fprintf fmt "<%s" tag;
      List.iter
        (fun (name, parts) ->
          Format.fprintf fmt " %s=\"" name;
          List.iter (pp_attr_part fmt) parts;
          Format.fprintf fmt "\"")
        attrs;
      if content = [] then Format.fprintf fmt "/>"
      else begin
        Format.fprintf fmt ">";
        List.iter (pp_content_part fmt) content;
        Format.fprintf fmt "</%s>" tag
      end

and pp_attr_part fmt = function
  | Ast.Fixed s -> Format.pp_print_string fmt (escape_ctor_text s)
  | Ast.Enclosed e -> Format.fprintf fmt "{%a}" pp_expr e

and pp_content_part fmt = function
  | Ast.Fixed s -> Format.pp_print_string fmt (escape_ctor_text s)
  | Ast.Enclosed (Ast.Elem_ctor _ as e) -> pp_expr fmt e
  | Ast.Enclosed e -> Format.fprintf fmt "{%a}" pp_expr e

(* Parenthesize everything that is not atomic; parentheses are free in
   the grammar and spare us a precedence table. *)
and pp_parens fmt expr =
  match expr with
  | Ast.Literal (Ast.Lit_int i) when Int64.compare i 0L >= 0 -> pp_expr fmt expr
  | Ast.Literal (Ast.Lit_string _)
  | Ast.Var _ | Ast.Context_item | Ast.Sequence _
  | Ast.Call _ | Ast.Step _ | Ast.Filter _ | Ast.Path_map _ | Ast.Elem_ctor _
    ->
      pp_expr fmt expr
  | _ -> Format.fprintf fmt "(%a)" pp_expr expr

let expr_to_string e = Format.asprintf "@[<hv>%a@]" pp_expr e

let decl_to_string = function
  | Ast.Decl_option { name; value } ->
      Printf.sprintf "declare option %s \"%s\";" name (escape_string value)
  | Ast.Decl_namespace { prefix; uri } ->
      Printf.sprintf "declare namespace %s = \"%s\";" prefix (escape_string uri)
  | Ast.Decl_variable { var; value } ->
      Printf.sprintf "declare variable $%s := %s;" (var_name var)
        (expr_to_string value)
  | Ast.Decl_function { fn_name; fn_params; fn_body } ->
      Printf.sprintf "declare function %s(%s) { %s };" fn_name
        (String.concat ", " (List.map (fun p -> "$" ^ var_name p) fn_params))
        (expr_to_string fn_body)

let query_to_string (q : Ast.query) =
  String.concat "\n"
    (List.map decl_to_string q.Ast.prolog @ [ expr_to_string q.Ast.body ])
