module Timing = Standoff_util.Timing
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table
module Config = Standoff.Config
module Catalog = Standoff.Catalog

type t = {
  coll : Collection.t;
  cat : Catalog.t;
  mutable strategy : Config.strategy;
}

let create ?(strategy = Config.Loop_lifted) coll =
  { coll; cat = Catalog.create (); strategy }

let collection t = t.coll
let catalog t = t.cat
let set_strategy t s = t.strategy <- s

type result = {
  items : Item.t list;
  serialized : string;
  config : Config.t;
}

(* Prolog processing: fold the standoff-* options into a configuration,
   register user functions, and evaluate global variables. *)
let process_prolog (q : Ast.query) =
  let functions = Hashtbl.create 8 in
  let config = ref Config.default in
  let strategy_override = ref None in
  let globals = ref [] in
  List.iter
    (function
      | Ast.Decl_option { name; value } -> (
          (* Accept both "standoff-start" and prefixed "so:standoff-start". *)
          let name =
            match String.index_opt name ':' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match name with
          | "standoff-type" ->
              config := Config.set_option !config ~name:"type" ~value
          | "standoff-start" ->
              config := Config.set_option !config ~name:"start" ~value
          | "standoff-end" ->
              config := Config.set_option !config ~name:"end" ~value
          | "standoff-region" ->
              config := Config.set_option !config ~name:"region" ~value
          | "standoff-strategy" ->
              strategy_override := Some (Config.strategy_of_string value)
          | _ -> () (* foreign options are ignored, as the spec requires *))
      | Ast.Decl_namespace _ -> ()
      | Ast.Decl_function fn ->
          if Hashtbl.mem functions fn.Ast.fn_name then
            Err.raisef "function %s declared twice" fn.Ast.fn_name;
          Hashtbl.add functions fn.Ast.fn_name fn
      | Ast.Decl_variable { var; value } -> globals := (var, value) :: !globals)
    q.Ast.prolog;
  (functions, !config, !strategy_override, List.rev !globals)

let run t ?strategy ?(deadline = Timing.no_deadline) ?context_doc
    ?(rollback_constructed = false) query_text =
  let q = Parse.parse_query query_text in
  let functions, config, strategy_override, globals = process_prolog q in
  let strategy =
    match (strategy, strategy_override) with
    | _, Some s -> s
    | Some s, None -> s
    | None, None -> t.strategy
  in
  let context =
    Option.map
      (fun name ->
        match Collection.doc_id_of_name t.coll name with
        | Some doc_id -> Item.Node { Collection.doc_id; pre = 0 }
        | None -> Err.raisef "context document %S not found" name)
      context_doc
  in
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () ->
      (* Constructed-node scratch documents are dropped when the caller
         does not need the node handles (benchmark loops), and always
         on error. *)
      if rollback_constructed then Collection.rollback t.coll mark)
    (fun () ->
      let env =
        Eval.initial_env ~coll:t.coll ~catalog:t.cat ~config ~strategy
          ~deadline ~functions ~context
      in
      let env =
        List.fold_left
          (fun env (var, value) ->
            { env with Eval.vars = (var, Eval.eval env value) :: env.Eval.vars })
          env globals
      in
      let table = Eval.eval env q.Ast.body in
      let items = Table.to_sequence table in
      (* Serialize before constructed documents are rolled back. *)
      let serialized = Serialize.sequence t.coll items in
      { items; serialized; config })

let explain query_text = Pp_ast.query_to_string (Parse.parse_query query_text)

let run_with_timeout t ?strategy ?context_doc ~seconds query_text =
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () -> Collection.rollback t.coll mark)
    (fun () ->
      Timing.run_with_timeout ~seconds (fun deadline ->
          run t ?strategy ~deadline ?context_doc query_text))
