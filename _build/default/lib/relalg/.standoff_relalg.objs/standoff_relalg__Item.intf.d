lib/relalg/item.mli: Format Standoff_store
