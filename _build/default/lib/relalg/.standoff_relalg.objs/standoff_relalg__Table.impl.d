lib/relalg/table.ml: Array Format Int64 Item List Standoff_util
