lib/relalg/item.ml: Format Int64 Standoff_store String
