lib/relalg/table.mli: Format Item
