(** Loop-lifted sequence tables: the [iter|pos|item] representation
    (paper §4.1).

    A table holds one item sequence per iteration of the enclosing
    for-loop nest.  Rows are grouped by [iter] (non-decreasing) and the
    position within a group is the sequence position ([pos] is implicit
    in row order).  The surrounding {e loop relation} — the sorted
    array of live iteration numbers — travels separately, because an
    iteration whose sequence is empty has no rows yet still exists
    (this matters for anti-joins and for [count]). *)

type t = private {
  iters : int array;
  items : Item.t array;
}
(** Invariant: [Array.length iters = Array.length items] and [iters]
    is non-decreasing. *)

(** {1 Construction} *)

(** [empty] has no rows. *)
val empty : t

(** [make iters items] checks the grouping invariant and builds a
    table.
    @raise Invalid_argument when lengths differ or [iters] decreases. *)
val make : int array -> Item.t array -> t

(** [of_rows rows] builds a table from [(iter, item)] pairs, sorting
    stably by [iter] (relative order within an iter is preserved). *)
val of_rows : (int * Item.t) list -> t

(** [const ~loop items] gives every iteration in [loop] the same
    sequence [items] — the translation of a literal under loop
    lifting. *)
val const : loop:int array -> Item.t list -> t

(** {1 Observation} *)

(** [row_count t] is the number of rows. *)
val row_count : t -> int

(** [iter_at t i] and [item_at t i] access row [i]. *)
val iter_at : t -> int -> int

val item_at : t -> int -> Item.t

(** [sequence_of_iter t iter] is the item sequence of iteration [iter]
    (binary search + slice; empty if the iteration has no rows). *)
val sequence_of_iter : t -> int -> Item.t list

(** [group_bounds t iter] is the row span [(lo, hi)] (half-open) of
    [iter]'s sequence. *)
val group_bounds : t -> int -> int * int

(** [to_sequence t] is the single sequence of a table known to live in
    a one-iteration loop; checks that only one distinct iter occurs.
    @raise Invalid_argument otherwise. *)
val to_sequence : t -> Item.t list

(** [iters_present t] is the sorted array of distinct iters that have
    at least one row. *)
val iters_present : t -> int array

(** {1 Loop-lifted operators} *)

(** [map_items f t] applies [f] row-wise. *)
val map_items : (Item.t -> Item.t) -> t -> t

(** [filter p t] keeps rows whose item satisfies [p]. *)
val filter : (Item.t -> bool) -> t -> t

(** [append2 t1 t2] is per-iteration sequence concatenation
    [(e1, e2)]: for each iter, the items of [t1] before those of
    [t2]. *)
val append2 : t -> t -> t

(** [concat ts] folds {!append2} over a list. *)
val concat : t list -> t

(** [distinct_doc_order t] sorts each iteration's sequence in document
    order and removes duplicates — the postprocessing every XPath (and
    StandOff) step requires.  All items must be nodes. *)
val distinct_doc_order : t -> t

(** [count ~loop t] is, per iteration of [loop], the number of rows —
    one [Int] row per iteration, including zero counts. *)
val count : loop:int array -> t -> t

(** [exists ~loop t] is, per iteration, [Bool (sequence is non-empty)]. *)
val exists : loop:int array -> t -> t

(** {1 The map relation of for-loops}

    Translating [for $x in e1 return e2] expands each row of
    [e1]'s table into a fresh inner iteration. *)

type expansion = {
  inner_loop : int array;     (** [0 .. n-1] for [n] rows of the source *)
  outer_of_inner : int array; (** maps inner iter -> outer iter *)
  var_table : t;              (** the loop variable: one item per inner iter *)
  pos_table : t;              (** positional variable [at $p]: 1-based *)
}

(** [expand t] builds the for-loop expansion of binding sequence [t]. *)
val expand : t -> expansion

(** [lift t ~outer_of_inner] re-distributes a table over the inner
    loop: inner iteration [i] receives the sequence that [t] assigns
    to [outer_of_inner.(i)].  Linear merge; requires [outer_of_inner]
    non-decreasing (which {!expand} guarantees). *)
val lift : t -> outer_of_inner:int array -> t

(** [backmap t ~outer_of_inner] renames inner iters back to outer
    iters, concatenating the inner sequences in inner-iter order —
    the return clause of the FLWOR translation. *)
val backmap : t -> outer_of_inner:int array -> t

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
