(** XQuery items: the atomic values and node references that populate
    the [pos|item] and [iter|pos|item] tables of the execution model
    (paper §4.1). *)

type t =
  | Node of Standoff_store.Collection.node
  | Attribute of Standoff_store.Collection.node * string * string
      (** owner element, attribute name, value — attributes are not
          first-class pres in the store, so the handle carries the
          owner *)
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string

(** [is_node item] holds for [Node] and [Attribute] items. *)
val is_node : t -> bool

(** [node_exn item] extracts the node handle of a [Node].
    @raise Invalid_argument otherwise. *)
val node_exn : t -> Standoff_store.Collection.node

(** [compare_doc_order a b] orders two [Node]/[Attribute] items in
    document order (attributes order directly after their owner,
    by name).
    @raise Invalid_argument on non-node items. *)
val compare_doc_order : t -> t -> int

(** [equal a b] is structural equality (used for dedup of nodes and in
    tests; numeric items of different types are unequal here). *)
val equal : t -> t -> bool

(** [pp fmt item] prints a debugging rendering. *)
val pp : Format.formatter -> t -> unit

(** [to_string item] is [pp] rendered to a string. *)
val to_string : t -> string
