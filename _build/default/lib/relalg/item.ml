module Collection = Standoff_store.Collection

type t =
  | Node of Collection.node
  | Attribute of Collection.node * string * string
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string

let is_node = function
  | Node _ | Attribute _ -> true
  | Bool _ | Int _ | Float _ | Str _ -> false

let node_exn = function
  | Node n -> n
  | Attribute (owner, _, _) -> owner
  | Bool _ | Int _ | Float _ | Str _ ->
      invalid_arg "Item.node_exn: not a node"

let compare_doc_order a b =
  match (a, b) with
  | Node n1, Node n2 -> Collection.compare_node n1 n2
  | Node n1, Attribute (n2, _, _) ->
      let c = Collection.compare_node n1 n2 in
      if c = 0 then -1 else c
  | Attribute (n1, _, _), Node n2 ->
      let c = Collection.compare_node n1 n2 in
      if c = 0 then 1 else c
  | Attribute (n1, a1, _), Attribute (n2, a2, _) ->
      let c = Collection.compare_node n1 n2 in
      if c <> 0 then c else String.compare a1 a2
  | (Bool _ | Int _ | Float _ | Str _), _ | _, (Bool _ | Int _ | Float _ | Str _)
    ->
      invalid_arg "Item.compare_doc_order: not a node"

let equal a b =
  match (a, b) with
  | Node n1, Node n2 -> n1 = n2
  | Attribute (n1, a1, v1), Attribute (n2, a2, v2) ->
      n1 = n2 && String.equal a1 a2 && String.equal v1 v2
  | Bool b1, Bool b2 -> b1 = b2
  | Int i1, Int i2 -> Int64.equal i1 i2
  | Float f1, Float f2 -> f1 = f2
  | Str s1, Str s2 -> String.equal s1 s2
  | (Node _ | Bool _ | Int _ | Float _ | Str _ | Attribute _), _ -> false

let pp fmt = function
  | Node n -> Format.fprintf fmt "node(%d:%d)" n.Collection.doc_id n.Collection.pre
  | Attribute (n, name, v) ->
      Format.fprintf fmt "attribute(%d:%d/@%s=%S)" n.Collection.doc_id
        n.Collection.pre name v
  | Bool b -> Format.fprintf fmt "%b" b
  | Int i -> Format.fprintf fmt "%Ld" i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s

let to_string item = Format.asprintf "%a" pp item
