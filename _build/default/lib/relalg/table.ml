module Vec = Standoff_util.Vec
module Search = Standoff_util.Search

type t = {
  iters : int array;
  items : Item.t array;
}

let empty = { iters = [||]; items = [||] }

let check_grouped iters =
  let n = Array.length iters in
  let rec loop i =
    if i >= n then true
    else if iters.(i - 1) > iters.(i) then false
    else loop (i + 1)
  in
  n = 0 || loop 1

let make iters items =
  if Array.length iters <> Array.length items then
    invalid_arg "Table.make: column length mismatch";
  if not (check_grouped iters) then
    invalid_arg "Table.make: iters not non-decreasing";
  { iters; items }

let of_rows rows =
  let arr = Array.of_list rows in
  let tagged = Array.mapi (fun i (it, x) -> (it, i, x)) arr in
  Array.sort
    (fun (i1, p1, _) (i2, p2, _) ->
      let c = compare i1 i2 in
      if c <> 0 then c else compare p1 p2)
    tagged;
  {
    iters = Array.map (fun (it, _, _) -> it) tagged;
    items = Array.map (fun (_, _, x) -> x) tagged;
  }

let const ~loop items =
  let items = Array.of_list items in
  let k = Array.length items in
  let n = Array.length loop in
  let iters = Array.make (n * k) 0 in
  let out = Array.make (n * k) (Item.Bool false) in
  for i = 0 to n - 1 do
    for j = 0 to k - 1 do
      iters.((i * k) + j) <- loop.(i);
      out.((i * k) + j) <- items.(j)
    done
  done;
  { iters; items = out }

let row_count t = Array.length t.iters
let iter_at t i = t.iters.(i)
let item_at t i = t.items.(i)

let group_bounds t iter =
  let lo = Search.lower_bound_int t.iters iter in
  let hi = Search.lower_bound_int t.iters (iter + 1) in
  (lo, hi)

let sequence_of_iter t iter =
  let lo, hi = group_bounds t iter in
  Array.to_list (Array.sub t.items lo (hi - lo))

let to_sequence t =
  let n = row_count t in
  if n > 0 && t.iters.(0) <> t.iters.(n - 1) then
    invalid_arg "Table.to_sequence: more than one iteration present";
  Array.to_list t.items

let iters_present t =
  let v = Vec.create () in
  Array.iteri
    (fun i it -> if i = 0 || t.iters.(i - 1) <> it then Vec.push v it)
    t.iters;
  Vec.to_array v

let map_items f t = { t with items = Array.map f t.items }

let filter p t =
  let iters = Vec.create () and items = Vec.create () in
  for i = 0 to row_count t - 1 do
    if p t.items.(i) then begin
      Vec.push iters t.iters.(i);
      Vec.push items t.items.(i)
    end
  done;
  { iters = Vec.to_array iters; items = Vec.to_array items }

(* Per-iteration concatenation is a one-pass merge on iter with t1's
   group emitted before t2's for equal iters. *)
let append2 t1 t2 =
  let n1 = row_count t1 and n2 = row_count t2 in
  let iters = Array.make (n1 + n2) 0 in
  let items = Array.make (n1 + n2) (Item.Bool false) in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let take_from t idx =
    iters.(!k) <- t.iters.(!idx);
    items.(!k) <- t.items.(!idx);
    incr idx;
    incr k
  in
  while !i < n1 || !j < n2 do
    if !j >= n2 then take_from t1 i
    else if !i >= n1 then take_from t2 j
    else if t1.iters.(!i) <= t2.iters.(!j) then take_from t1 i
    else take_from t2 j
  done;
  { iters; items }

let concat ts = List.fold_left append2 empty ts

let distinct_doc_order t =
  let iters = Vec.create () and items = Vec.create () in
  let n = row_count t in
  let i = ref 0 in
  while !i < n do
    let iter = t.iters.(!i) in
    let j = ref !i in
    while !j < n && t.iters.(!j) = iter do
      incr j
    done;
    let group = Array.sub t.items !i (!j - !i) in
    Array.sort Item.compare_doc_order group;
    Array.iteri
      (fun k item ->
        if k = 0 || not (Item.equal group.(k - 1) item) then begin
          Vec.push iters iter;
          Vec.push items item
        end)
      group;
    i := !j
  done;
  { iters = Vec.to_array iters; items = Vec.to_array items }

let per_iter_aggregate ~loop t ~f =
  let n = Array.length loop in
  let iters = Array.copy loop in
  let items = Array.make n (Item.Bool false) in
  Array.iteri
    (fun i iter ->
      let lo, hi = group_bounds t iter in
      items.(i) <- f (hi - lo))
    loop;
  { iters; items }

let count ~loop t =
  per_iter_aggregate ~loop t ~f:(fun n -> Item.Int (Int64.of_int n))

let exists ~loop t = per_iter_aggregate ~loop t ~f:(fun n -> Item.Bool (n > 0))

type expansion = {
  inner_loop : int array;
  outer_of_inner : int array;
  var_table : t;
  pos_table : t;
}

let expand t =
  let n = row_count t in
  let inner_loop = Array.init n (fun i -> i) in
  let pos_items = Array.make n (Item.Bool false) in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    if i > 0 && t.iters.(i - 1) = t.iters.(i) then incr pos else pos := 1;
    pos_items.(i) <- Item.Int (Int64.of_int !pos)
  done;
  {
    inner_loop;
    outer_of_inner = Array.copy t.iters;
    var_table = { iters = Array.copy inner_loop; items = Array.copy t.items };
    pos_table = { iters = Array.copy inner_loop; items = pos_items };
  }

let lift t ~outer_of_inner =
  let iters = Vec.create () and items = Vec.create () in
  Array.iteri
    (fun inner outer ->
      let lo, hi = group_bounds t outer in
      for r = lo to hi - 1 do
        Vec.push iters inner;
        Vec.push items t.items.(r)
      done)
    outer_of_inner;
  { iters = Vec.to_array iters; items = Vec.to_array items }

let backmap t ~outer_of_inner =
  (* Inner iters are sorted and outer_of_inner is non-decreasing, so the
     renamed column stays grouped and the inner order realises the
     per-outer-iteration concatenation. *)
  { t with iters = Array.map (fun inner -> outer_of_inner.(inner)) t.iters }

let pp fmt t =
  Format.fprintf fmt "@[<v>iter|item@,";
  for i = 0 to row_count t - 1 do
    Format.fprintf fmt "%4d|%a@," t.iters.(i) Item.pp t.items.(i)
  done;
  Format.fprintf fmt "@]"
