lib/interval/area.ml: Format Int64 List Region
