lib/interval/area.mli: Format Region
