lib/interval/region.mli: Format
