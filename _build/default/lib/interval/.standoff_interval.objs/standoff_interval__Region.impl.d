lib/interval/region.ml: Format Int64 Printf
