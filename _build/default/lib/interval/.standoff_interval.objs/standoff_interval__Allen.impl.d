lib/interval/allen.ml: Format Int64 Region
