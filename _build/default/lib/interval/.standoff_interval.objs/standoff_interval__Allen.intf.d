lib/interval/allen.mli: Format Region
