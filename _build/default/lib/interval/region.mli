(** Regions: closed [\[start,end\]] ranges over a totally ordered
    64-bit position domain (paper §2).

    Positions may denote byte offsets into a disk image, token offsets
    into a text corpus, or (milli)seconds into a media stream; the
    algorithms only require a full order, which [int64] provides. *)

type pos = int64

type t = private {
  start_ : pos;
  end_ : pos;
}
(** Invariant: [start_ <= end_].  The region includes both endpoints. *)

(** [make start end_] is the region [\[start,end_\]].
    @raise Invalid_argument if [start > end_]. *)
val make : pos -> pos -> t

(** [make_int start end_] is [make] over plain integers, for
    convenience in tests and generators. *)
val make_int : int -> int -> t

(** [start_pos r] is the inclusive lower endpoint. *)
val start_pos : t -> pos

(** [end_pos r] is the inclusive upper endpoint. *)
val end_pos : t -> pos

(** [width r] is [end - start] (0 for a point region). *)
val width : t -> int64

(** [contains r1 r2] holds when [r2] lies entirely inside [r1]:
    [r1.start <= r2.start <= r2.end <= r1.end]. *)
val contains : t -> t -> bool

(** [contains_pos r p] holds when position [p] lies inside [r]. *)
val contains_pos : t -> pos -> bool

(** [overlaps r1 r2] holds when the regions share at least one
    position: [r1.start <= r2.end && r1.end >= r2.start].  Closed-
    interval semantics: touching endpoints do overlap, matching the
    paper's definition. *)
val overlaps : t -> t -> bool

(** [disjoint r1 r2] is [not (overlaps r1 r2)]. *)
val disjoint : t -> t -> bool

(** [precedes r1 r2] holds when [r1] ends strictly before [r2] starts. *)
val precedes : t -> t -> bool

(** [intersection r1 r2] is the common sub-region, if any. *)
val intersection : t -> t -> t option

(** [hull r1 r2] is the smallest region covering both. *)
val hull : t -> t -> t

(** [compare r1 r2] orders by [start], then by [end] {e descending}
    (wider first) — the clustering order of the region index (§4.3),
    chosen so that a containing region precedes its contained ones. *)
val compare : t -> t -> int

(** [equal r1 r2] is structural equality. *)
val equal : t -> t -> bool

(** [pp fmt r] prints ["[start,end]"]. *)
val pp : Format.formatter -> t -> unit

(** [to_string r] is [pp] rendered to a string. *)
val to_string : t -> string
