(** Allen's thirteen interval relations (Allen, CACM 1983), adapted to
    the closed integer position domain of stand-off regions.

    The paper (§3) observes that two regions can stand in 13 distinct
    relationships and that, for stand-off querying, these collapse onto
    the two notions of {e containment} and {e overlap}.  This module
    makes that collapse explicit and testable: {!classify} computes the
    exact Allen relation, and {!implies_overlap} / {!implies_containment}
    state which relations each StandOff join semantics responds to.

    On closed integer intervals, "r1 meets r2" is defined as adjacency
    with no shared position ([r1.end + 1 = r2.start]); intervals that
    share their boundary position ([r1.end = r2.start]) genuinely
    overlap under the paper's closed-interval semantics and classify as
    [Overlaps] (or a containment relation).  With these definitions the
    13 relations are mutually exclusive and jointly exhaustive. *)

type relation =
  | Precedes       (** r1 ends at least two positions before r2 starts *)
  | Meets          (** r1.end + 1 = r2.start: adjacent, nothing shared *)
  | Overlaps       (** proper partial overlap, r1 first *)
  | Finished_by    (** r1 starts first, both end together *)
  | Contains       (** r1 strictly contains r2 on both sides *)
  | Starts         (** both start together, r1 ends first *)
  | Equals         (** identical *)
  | Started_by     (** both start together, r2 ends first *)
  | During         (** r1 strictly inside r2 on both sides *)
  | Finishes       (** both end together, r2 starts first *)
  | Overlapped_by  (** proper partial overlap, r2 first *)
  | Met_by         (** inverse of [Meets] *)
  | Preceded_by    (** inverse of [Precedes] *)

(** [all] lists the 13 relations in the canonical order above. *)
val all : relation list

(** [classify r1 r2] is the unique Allen relation holding between [r1]
    and [r2]. *)
val classify : Region.t -> Region.t -> relation

(** [inverse rel] swaps the roles of the two intervals:
    [classify r2 r1 = inverse (classify r1 r2)]. *)
val inverse : relation -> relation

(** [implies_overlap rel] holds for the nine relations in which the
    closed intervals share at least one position (everything except
    [Precedes], [Meets], [Met_by], [Preceded_by]).  Coincides with the
    paper's [overlaps] predicate: for all regions,
    [implies_overlap (classify r1 r2) = Region.overlaps r1 r2]. *)
val implies_overlap : relation -> bool

(** [implies_containment rel] holds when the first interval contains
    the second under the paper's (non-strict) containment:
    [Contains], [Equals], [Started_by], [Finished_by].  Coincides with
    [Region.contains r1 r2]. *)
val implies_containment : relation -> bool

(** [to_string rel] is a stable lowercase name, e.g. ["finished-by"]. *)
val to_string : relation -> string

(** [pp fmt rel] prints {!to_string}. *)
val pp : Format.formatter -> relation -> unit
