type relation =
  | Precedes
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | Preceded_by

let all =
  [
    Precedes; Meets; Overlaps; Finished_by; Contains; Starts; Equals;
    Started_by; During; Finishes; Overlapped_by; Met_by; Preceded_by;
  ]

let classify r1 r2 =
  let s1 = Region.start_pos r1 and e1 = Region.end_pos r1 in
  let s2 = Region.start_pos r2 and e2 = Region.end_pos r2 in
  let c = Int64.compare in
  if c e1 s2 < 0 then
    (* Disjoint, r1 first: adjacency (no gap) is Meets.  [Int64.add]
       cannot wrap here: e1 < s2 implies e1 < max_int. *)
    if c (Int64.add e1 1L) s2 = 0 then Meets else Precedes
  else if c e2 s1 < 0 then
    if c (Int64.add e2 1L) s1 = 0 then Met_by else Preceded_by
  else
    match (c s1 s2, c e1 e2) with
    | 0, 0 -> Equals
    | 0, x when x < 0 -> Starts
    | 0, _ -> Started_by
    | x, 0 when x < 0 -> Finished_by
    | _, 0 -> Finishes
    | x, y when x < 0 && y > 0 -> Contains
    | x, y when x > 0 && y < 0 -> During
    | x, _ when x < 0 -> Overlaps
    | _ -> Overlapped_by

let inverse = function
  | Precedes -> Preceded_by
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Finished_by -> Finishes
  | Contains -> During
  | Starts -> Started_by
  | Equals -> Equals
  | Started_by -> Starts
  | During -> Contains
  | Finishes -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | Preceded_by -> Precedes

let implies_overlap = function
  | Precedes | Meets | Met_by | Preceded_by -> false
  | Overlaps | Finished_by | Contains | Starts | Equals | Started_by
  | During | Finishes | Overlapped_by ->
      true

let implies_containment = function
  | Contains | Equals | Started_by | Finished_by -> true
  | Precedes | Meets | Overlaps | Starts | During | Finishes
  | Overlapped_by | Met_by | Preceded_by ->
      false

let to_string = function
  | Precedes -> "precedes"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Starts -> "starts"
  | Equals -> "equals"
  | Started_by -> "started-by"
  | During -> "during"
  | Finishes -> "finishes"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | Preceded_by -> "preceded-by"

let pp fmt rel = Format.pp_print_string fmt (to_string rel)
