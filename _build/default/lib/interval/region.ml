type pos = int64

type t = {
  start_ : pos;
  end_ : pos;
}

let make start_ end_ =
  if Int64.compare start_ end_ > 0 then
    invalid_arg
      (Printf.sprintf "Region.make: start %Ld > end %Ld" start_ end_);
  { start_; end_ }

let make_int s e = make (Int64.of_int s) (Int64.of_int e)

let start_pos r = r.start_
let end_pos r = r.end_
let width r = Int64.sub r.end_ r.start_

let contains r1 r2 =
  Int64.compare r1.start_ r2.start_ <= 0
  && Int64.compare r2.end_ r1.end_ <= 0

let contains_pos r p =
  Int64.compare r.start_ p <= 0 && Int64.compare p r.end_ <= 0

let overlaps r1 r2 =
  Int64.compare r1.start_ r2.end_ <= 0
  && Int64.compare r1.end_ r2.start_ >= 0

let disjoint r1 r2 = not (overlaps r1 r2)

let precedes r1 r2 = Int64.compare r1.end_ r2.start_ < 0

let intersection r1 r2 =
  if overlaps r1 r2 then
    Some
      {
        start_ = (if Int64.compare r1.start_ r2.start_ >= 0 then r1.start_ else r2.start_);
        end_ = (if Int64.compare r1.end_ r2.end_ <= 0 then r1.end_ else r2.end_);
      }
  else None

let hull r1 r2 =
  {
    start_ = (if Int64.compare r1.start_ r2.start_ <= 0 then r1.start_ else r2.start_);
    end_ = (if Int64.compare r1.end_ r2.end_ >= 0 then r1.end_ else r2.end_);
  }

let compare r1 r2 =
  let c = Int64.compare r1.start_ r2.start_ in
  if c <> 0 then c else Int64.compare r2.end_ r1.end_

let equal r1 r2 = r1.start_ = r2.start_ && r1.end_ = r2.end_

let pp fmt r = Format.fprintf fmt "[%Ld,%Ld]" r.start_ r.end_
let to_string r = Format.asprintf "%a" pp r
