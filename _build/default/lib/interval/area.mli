(** Area-annotations: sets of one or more regions (paper §3.1).

    An area represents a possibly non-contiguous portion of the BLOB,
    e.g. a file reconstructed from scattered disk blocks, or a
    discontinuous grammatical construct.  The paper requires the
    regions of an area to neither overlap nor touch; {!make}
    normalises arbitrary input to that canonical form by merging. *)

type t
(** Invariant: regions sorted on [start], pairwise disjoint and
    non-adjacent (gap of at least one position between consecutive
    regions), and at least one region present. *)

(** [make regions] normalises [regions] into an area: sorts them and
    merges any pair that overlaps or touches (end + 1 = next start).
    @raise Invalid_argument on an empty list. *)
val make : Region.t list -> t

(** [of_region r] is the contiguous area consisting of [r] alone. *)
val of_region : Region.t -> t

(** [regions a] is the canonical region list, sorted on [start]. *)
val regions : t -> Region.t list

(** [region_count a] is the number of (canonical) regions. *)
val region_count : t -> int

(** [is_contiguous a] holds when the area is a single region. *)
val is_contiguous : t -> bool

(** [extent a] is the covering region [\[min start, max end\]]. *)
val extent : t -> Region.t

(** [total_width a] is the summed width of the regions. *)
val total_width : t -> int64

(** [contains a1 a2] — the paper's containment between areas:
    every region of [a2] lies inside {e some} region of [a1].
    Formally:  ∀ r2 ∈ a2, ∃ r1 ∈ a1:
    [r1.start <= r2.start <= r2.end <= r1.end]. *)
val contains : t -> t -> bool

(** [overlaps a1 a2] — the paper's overlap between areas: some region
    of [a1] shares a position with some region of [a2]. *)
val overlaps : t -> t -> bool

(** [contains_strictly_one_sided a1 a2] is [contains a1 a2 && not
    (contains a2 a1)] — convenience for tests. *)
val contains_strictly_one_sided : t -> t -> bool

(** [equal a1 a2] is equality of canonical forms. *)
val equal : t -> t -> bool

(** [compare a1 a2] orders by the canonical region lists
    lexicographically (with {!Region.compare}). *)
val compare : t -> t -> int

(** [pp fmt a] prints ["{[s,e];[s,e];...}"]. *)
val pp : Format.formatter -> t -> unit

(** [to_string a] is [pp] rendered to a string. *)
val to_string : t -> string
