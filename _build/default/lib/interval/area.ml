type t = Region.t list
(* Canonical: sorted on start, pairwise disjoint with a gap of >= 1
   position between consecutive regions, non-empty. *)

let touches_or_overlaps r1 r2 =
  (* After sorting, r1.start <= r2.start; they merge when r2 starts at or
     before the position just after r1 ends. *)
  Int64.compare (Region.start_pos r2) (Int64.add (Region.end_pos r1) 1L) <= 0

let make regions =
  match List.sort Region.compare regions with
  | [] -> invalid_arg "Area.make: an area needs at least one region"
  | first :: rest ->
      let merged, last =
        List.fold_left
          (fun (done_, cur) r ->
            if touches_or_overlaps cur r then (done_, Region.hull cur r)
            else (cur :: done_, r))
          ([], first) rest
      in
      List.rev (last :: merged)

let of_region r = [ r ]
let regions a = a
let region_count a = List.length a
let is_contiguous a = match a with [ _ ] -> true | _ -> false

let extent a =
  match a with
  | [] -> assert false
  | first :: _ ->
      let rec last = function [ r ] -> r | _ :: tl -> last tl | [] -> assert false in
      Region.make (Region.start_pos first) (Region.end_pos (last a))

let total_width a =
  List.fold_left (fun acc r -> Int64.add acc (Region.width r)) 0L a

let contains a1 a2 =
  List.for_all (fun r2 -> List.exists (fun r1 -> Region.contains r1 r2) a1) a2

let overlaps a1 a2 =
  List.exists (fun r1 -> List.exists (fun r2 -> Region.overlaps r1 r2) a2) a1

let contains_strictly_one_sided a1 a2 = contains a1 a2 && not (contains a2 a1)

let equal a1 a2 = List.equal Region.equal a1 a2

let compare a1 a2 = List.compare Region.compare a1 a2

let pp fmt a =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ';')
       Region.pp)
    a

let to_string a = Format.asprintf "%a" pp a
