#!/usr/bin/env bash
# Smoke-test the network query service end to end: boot it against a
# generated XMark instance, exercise the endpoints with curl, then
# SIGTERM it and require a clean, drained exit (status 0).  A second
# scenario boots with --data-dir, SIGKILLs the server mid-stream, and
# requires the restart to recover every acknowledged update.
#
#   scripts/server_smoke.sh [path/to/standoff_server.exe]
set -euo pipefail

BIN=${1:-./_build/default/bin/standoff_server.exe}
PORT=${PORT:-8123}
BASE="http://127.0.0.1:$PORT"
DOC='xmark-standoff-0.01.xml'

fail() { echo "FAIL: $*" >&2; exit 1; }

# wait_up PID LOG — spin until /healthz answers or PID dies.
wait_up() {
  local pid=$1 logfile=$2 i
  for i in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$pid" 2>/dev/null \
      || { cat "$logfile" >&2; fail "server died during startup"; }
    sleep 0.2
  done
  cat "$logfile" >&2; fail "server never became healthy"
}

log=$(mktemp)
"$BIN" --xmark 0.01 --port "$PORT" --workers 2 >"$log" 2>&1 &
server_pid=$!
trap 'kill -9 $server_pid 2>/dev/null || true; rm -f "$log"' EXIT

# Wait for the listener to come up.
up=0
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  kill -0 $server_pid 2>/dev/null || { cat "$log" >&2; fail "server died during startup"; }
  sleep 0.2
done
[ "$up" = 1 ] || { cat "$log" >&2; fail "server never became healthy"; }

echo "== healthz"
[ "$(curl -fsS "$BASE/healthz")" = "ok" ] || fail "healthz body"

echo "== startup budget line"
grep -q 'domain budget' "$log" \
  || { cat "$log" >&2; fail "no resolved-domain-budget line in startup log"; }

echo "== query"
headers=$(mktemp)
body=$(curl -fsS -D "$headers" -X POST --data-binary \
  "count(doc(\"$DOC\")//site/select-narrow::regions)" \
  "$BASE/query?strategy=loop-lifted")
[ "$body" = "1" ] || fail "query answered '$body', expected '1'"
grep -qi '^x-request-id:' "$headers" || fail "missing X-Request-Id"
grep -qi '^x-standoff-cache:' "$headers" || fail "missing X-Standoff-Cache"
rm -f "$headers"

echo "== dataguide knob"
# ?dataguide=off must evaluate without the path index yet return the
# exact bytes of the default-on run above — the index is a pure
# performance knob.
body_nodg=$(curl -fsS -X POST --data-binary \
  "count(doc(\"$DOC\")//site/select-narrow::regions)" \
  "$BASE/query?strategy=loop-lifted&dataguide=off")
[ "$body_nodg" = "$body" ] \
  || fail "dataguide=off answered '$body_nodg', default-on said '$body'"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary \
  "count(doc(\"$DOC\")//site)" "$BASE/query?dataguide=sideways")
[ "$code" = 400 ] || fail "malformed dataguide= answered $code, expected 400"

echo "== query errors"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary \
  'this is not xquery (' "$BASE/query")
[ "$code" = 400 ] || fail "syntax error answered $code, expected 400"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/nowhere")
[ "$code" = 404 ] || fail "unknown path answered $code, expected 404"

echo "== explain"
curl -fsS "$BASE/explain?q=count(doc(%22$DOC%22)//site)" \
  | grep -q . || fail "explain returned an empty plan"

echo "== metrics"
metrics=$(curl -fsS "$BASE/metrics")
echo "$metrics" | grep -q 'standoff_server_requests_total{code="200"}' \
  || fail "metrics missing requests_total{code=\"200\"}"
echo "$metrics" | grep -q 'standoff_server_queue_depth' \
  || fail "metrics missing queue_depth gauge"

echo "== graceful shutdown"
kill -TERM $server_pid
status=0
wait $server_pid || status=$?
[ "$status" = 0 ] || { cat "$log" >&2; fail "server exited $status on SIGTERM"; }
grep -q 'drained' "$log" || { cat "$log" >&2; fail "no drain message in server log"; }
trap 'rm -f "$log"' EXIT

# ------------------------------------------------------------------
# Durability: acknowledged updates must survive kill -9.

workdir=$(mktemp -d)
datadir="$workdir/data"
dlog="$workdir/server.log"
printf '<t><p start="0" end="10"/><c start="2" end="8"/></t>' \
  >"$workdir/anno.xml"
trap 'kill -9 ${server_pid:-0} 2>/dev/null || true; rm -rf "$log" "$workdir"' EXIT
PROBE='count(doc("anno.xml")//p/select-narrow::c)'

echo "== durability: updates, then kill -9"
"$BIN" --doc "$workdir/anno.xml" --port "$PORT" --workers 2 \
  --data-dir "$datadir" --fsync always >"$dlog" 2>&1 &
server_pid=$!
wait_up $server_pid "$dlog"
# Two acknowledged updates; --fsync always means both are on disk the
# moment their 200s arrive.
curl -fsS -X POST \
  "$BASE/update?doc=anno.xml&op=set-region&pre=2&start=100&end=110" \
  | grep -q '"durable": true' || fail "update 1 not acknowledged as durable"
curl -fsS -X POST \
  "$BASE/update?doc=anno.xml&op=set-region&pre=3&start=102&end=108" \
  | grep -q '"ok": true' || fail "update 2 not acknowledged"
before=$(curl -fsS -X POST --data-binary "$PROBE" "$BASE/query")
[ "$before" = "1" ] || fail "pre-crash probe answered '$before', expected '1'"
kill -9 $server_pid
wait $server_pid 2>/dev/null || true

echo "== durability: recovery replays the acknowledged updates"
"$BIN" --doc "$workdir/anno.xml" --port "$PORT" --workers 2 \
  --data-dir "$datadir" --fsync always >"$dlog" 2>&1 &
server_pid=$!
wait_up $server_pid "$dlog"
grep -q 'replayed 2 WAL record' "$dlog" \
  || { cat "$dlog" >&2; fail "restart did not replay 2 WAL records"; }
after=$(curl -fsS -X POST --data-binary "$PROBE" "$BASE/query")
[ "$after" = "$before" ] \
  || fail "post-crash probe answered '$after', pre-crash said '$before'"

echo "== durability: operator snapshot, then a dirty SIGTERM"
curl -fsS -X POST "$BASE/admin/snapshot" | grep -q '"ok": true' \
  || fail "/admin/snapshot did not succeed"
# One more update after the snapshot, so shutdown has something to
# compact: p moves away from c and the probe flips to 0.
curl -fsS -X POST \
  "$BASE/update?doc=anno.xml&op=set-region&pre=2&start=200&end=210" \
  | grep -q '"ok": true' || fail "post-snapshot update not acknowledged"
kill -TERM $server_pid
status=0
wait $server_pid || status=$?
[ "$status" = 0 ] || { cat "$dlog" >&2; fail "durable server exited $status on SIGTERM"; }
grep -q 'writing shutdown snapshot' "$dlog" \
  || { cat "$dlog" >&2; fail "no shutdown-snapshot message"; }

echo "== durability: snapshot-only boot (no --doc)"
# The snapshot *is* the store now: boot without any seed documents.
"$BIN" --port "$PORT" --workers 2 --data-dir "$datadir" >"$dlog" 2>&1 &
server_pid=$!
wait_up $server_pid "$dlog"
grep -q 'snapshot lsn=' "$dlog" \
  || { cat "$dlog" >&2; fail "boot did not recover from a snapshot"; }
grep -q 'replayed 0 WAL record' "$dlog" \
  || { cat "$dlog" >&2; fail "snapshot boot replayed a non-empty WAL"; }
final=$(curl -fsS -X POST --data-binary "$PROBE" "$BASE/query")
[ "$final" = "0" ] || fail "snapshot boot probe answered '$final', expected '0'"
kill -TERM $server_pid
status=0
wait $server_pid || status=$?
[ "$status" = 0 ] || { cat "$dlog" >&2; fail "snapshot-boot server exited $status on SIGTERM"; }

# ------------------------------------------------------------------
# Bulk ingestion: one POST /ingest batch is one WAL record, and the
# whole batch survives kill -9.

ingestdir="$workdir/ingest-data"
ilog="$workdir/ingest.log"

echo "== ingest: batch of 3 framed documents"
"$BIN" --port "$PORT" --workers 2 --data-dir "$ingestdir" --fsync always \
  >"$ilog" 2>&1 &
server_pid=$!
wait_up $server_pid "$ilog"
d1='<doc><p><w>alpha</w> <w>beta</w></p></doc>'
d2='<doc><p><w>gamma</w></p></doc>'
d3='<doc><p><w>delta</w> <w>epsilon</w> <w>zeta</w></p></doc>'
batch="$workdir/batch.txt"
{
  printf '%s %d\n%s\n' doc1.xml "${#d1}" "$d1"
  printf '%s %d\n%s\n' doc2.xml "${#d2}" "$d2"
  printf '%s %d\n%s\n' doc3.xml "${#d3}" "$d3"
} >"$batch"
resp=$(curl -fsS -X POST --data-binary @"$batch" "$BASE/ingest")
echo "$resp" | grep -q '"ingested": 3' \
  || fail "ingest answered '$resp', expected 3 documents"
IPROBE='count(doc("doc1.xml")//p/select-narrow::w)'
got=$(curl -fsS -X POST --data-binary "$IPROBE" "$BASE/query")
[ "$got" = "2" ] || fail "ingest probe answered '$got', expected '2'"
kill -9 $server_pid
wait $server_pid 2>/dev/null || true

echo "== ingest: recovery replays the batch as one WAL record"
"$BIN" --port "$PORT" --workers 2 --data-dir "$ingestdir" --fsync always \
  >"$ilog" 2>&1 &
server_pid=$!
wait_up $server_pid "$ilog"
grep -q 'replayed 1 WAL record' "$ilog" \
  || { cat "$ilog" >&2; fail "restart did not replay exactly 1 WAL record"; }
after=$(curl -fsS -X POST --data-binary "$IPROBE" "$BASE/query")
[ "$after" = "2" ] || fail "post-crash ingest probe answered '$after', expected '2'"
# A second copy of doc1 must be refused batch-wide.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  --data-binary @"$batch" "$BASE/ingest")
[ "$code" = 409 ] || fail "duplicate ingest batch answered $code, expected 409"
kill -TERM $server_pid
status=0
wait $server_pid || status=$?
[ "$status" = 0 ] || { cat "$ilog" >&2; fail "ingest server exited $status on SIGTERM"; }

echo "PASS: server smoke test"
