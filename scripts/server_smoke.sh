#!/usr/bin/env bash
# Smoke-test the network query service end to end: boot it against a
# generated XMark instance, exercise the endpoints with curl, then
# SIGTERM it and require a clean, drained exit (status 0).
#
#   scripts/server_smoke.sh [path/to/standoff_server.exe]
set -euo pipefail

BIN=${1:-./_build/default/bin/standoff_server.exe}
PORT=${PORT:-8123}
BASE="http://127.0.0.1:$PORT"
DOC='xmark-standoff-0.01.xml'

fail() { echo "FAIL: $*" >&2; exit 1; }

log=$(mktemp)
"$BIN" --xmark 0.01 --port "$PORT" --workers 2 >"$log" 2>&1 &
server_pid=$!
trap 'kill -9 $server_pid 2>/dev/null || true; rm -f "$log"' EXIT

# Wait for the listener to come up.
up=0
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  kill -0 $server_pid 2>/dev/null || { cat "$log" >&2; fail "server died during startup"; }
  sleep 0.2
done
[ "$up" = 1 ] || { cat "$log" >&2; fail "server never became healthy"; }

echo "== healthz"
[ "$(curl -fsS "$BASE/healthz")" = "ok" ] || fail "healthz body"

echo "== startup budget line"
grep -q 'domain budget' "$log" \
  || { cat "$log" >&2; fail "no resolved-domain-budget line in startup log"; }

echo "== query"
headers=$(mktemp)
body=$(curl -fsS -D "$headers" -X POST --data-binary \
  "count(doc(\"$DOC\")//site/select-narrow::regions)" \
  "$BASE/query?strategy=loop-lifted")
[ "$body" = "1" ] || fail "query answered '$body', expected '1'"
grep -qi '^x-request-id:' "$headers" || fail "missing X-Request-Id"
grep -qi '^x-standoff-cache:' "$headers" || fail "missing X-Standoff-Cache"
rm -f "$headers"

echo "== dataguide knob"
# ?dataguide=off must evaluate without the path index yet return the
# exact bytes of the default-on run above — the index is a pure
# performance knob.
body_nodg=$(curl -fsS -X POST --data-binary \
  "count(doc(\"$DOC\")//site/select-narrow::regions)" \
  "$BASE/query?strategy=loop-lifted&dataguide=off")
[ "$body_nodg" = "$body" ] \
  || fail "dataguide=off answered '$body_nodg', default-on said '$body'"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary \
  "count(doc(\"$DOC\")//site)" "$BASE/query?dataguide=sideways")
[ "$code" = 400 ] || fail "malformed dataguide= answered $code, expected 400"

echo "== query errors"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary \
  'this is not xquery (' "$BASE/query")
[ "$code" = 400 ] || fail "syntax error answered $code, expected 400"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/nowhere")
[ "$code" = 404 ] || fail "unknown path answered $code, expected 404"

echo "== explain"
curl -fsS "$BASE/explain?q=count(doc(%22$DOC%22)//site)" \
  | grep -q . || fail "explain returned an empty plan"

echo "== metrics"
metrics=$(curl -fsS "$BASE/metrics")
echo "$metrics" | grep -q 'standoff_server_requests_total{code="200"}' \
  || fail "metrics missing requests_total{code=\"200\"}"
echo "$metrics" | grep -q 'standoff_server_queue_depth' \
  || fail "metrics missing queue_depth gauge"

echo "== graceful shutdown"
kill -TERM $server_pid
status=0
wait $server_pid || status=$?
[ "$status" = 0 ] || { cat "$log" >&2; fail "server exited $status on SIGTERM"; }
grep -q 'drained' "$log" || { cat "$log" >&2; fail "no drain message in server log"; }
trap 'rm -f "$log"' EXIT

echo "PASS: server smoke test"
