#!/usr/bin/env bash
# Smoke-test the shard router end to end against real child processes:
# boot it with 4 managed shards and a bearer token, exercise routed
# query/update/ingest plus the fan-out endpoints, stream a response
# bigger than any single write buffer, kill -9 one shard and require
# supervised recovery (WAL replay included), then SIGTERM the router
# and require a clean exit with no orphaned shard processes.
#
#   scripts/router_smoke.sh [path/to/standoff_router.exe] [path/to/standoff_server.exe]
set -euo pipefail

ROUTER=${1:-./_build/default/bin/standoff_router.exe}
SERVER=${2:-./_build/default/bin/standoff_server.exe}
PORT=${PORT:-8141}
BASE="http://127.0.0.1:$PORT"
TOKEN="smoke-secret"
AUTH=(-H "Authorization: Bearer $TOKEN")

fail() { echo "FAIL: $*" >&2; exit 1; }

workdir=$(mktemp -d)
rlog="$workdir/router.log"
trap 'kill -9 ${router_pid:-0} 2>/dev/null || true;
      pkill -9 -f "data/shard-" 2>/dev/null || true;
      rm -rf "$workdir"' EXIT

"$ROUTER" --shards 4 --data-root "$workdir/data" --shard-exe "$SERVER" \
  --port "$PORT" --auth-token "$TOKEN" >"$rlog" 2>&1 &
router_pid=$!

echo "== readiness: all 4 shards recover their (empty) WALs"
up=0
for _ in $(seq 1 150); do
  if curl -fsS "$BASE/healthz?ready=1" >/dev/null 2>&1; then up=1; break; fi
  kill -0 $router_pid 2>/dev/null \
    || { cat "$rlog" >&2; fail "router died during startup"; }
  sleep 0.2
done
[ "$up" = 1 ] || { cat "$rlog" >&2; fail "router never became ready"; }

echo "== auth: the protected surface answers 401 without the token"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST --data-binary '1' "$BASE/query")
[ "$code" = 401 ] || fail "tokenless query answered $code, expected 401"
code=$(curl -sS -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer wrong' -X POST --data-binary '1' "$BASE/query")
[ "$code" = 401 ] || fail "wrong-token query answered $code, expected 401"
[ "$(curl -fsS "$BASE/healthz")" = "ok" ] || fail "liveness should stay open"

echo "== ingest: a framed batch splits across the shards"
doc='<t><p start="0" end="10"/><c start="2" end="8"/></t>'
batch="$workdir/batch.txt"
: >"$batch"
for i in $(seq 1 12); do
  printf 'doc-%02d.xml %d\n%s\n' "$i" "${#doc}" "$doc" >>"$batch"
done
resp=$(curl -fsS "${AUTH[@]}" -X POST --data-binary @"$batch" \
  "$BASE/ingest?convert=none")
echo "$resp" | grep -q '"ok": true' || fail "routed ingest: $resp"
echo "$resp" | grep -q '"ok": false' && fail "routed ingest lost a document: $resp"
# the per-document report names more than one shard
shards_used=$(echo "$resp" | grep -o '"shard": "shard-[0-9]"' | sort -u | wc -l)
[ "$shards_used" -ge 2 ] || fail "batch of 12 landed on $shards_used shard(s)"

echo "== routed query and update"
headers="$workdir/headers.txt"
body=$(curl -fsS -D "$headers" "${AUTH[@]}" -X POST --data-binary \
  'count(doc("doc-01.xml")//p/select-narrow::c)' "$BASE/query")
[ "$body" = "1" ] || fail "routed query answered '$body', expected '1'"
grep -qi '^x-standoff-shard:' "$headers" || fail "missing X-Standoff-Shard"
curl -fsS "${AUTH[@]}" -X POST \
  "$BASE/update?doc=doc-01.xml&pre=2&start=50&end=60" \
  | grep -q '"ok": true' || fail "routed update not acknowledged"
body=$(curl -fsS "${AUTH[@]}" -X POST --data-binary \
  'count(doc("doc-01.xml")//p/select-narrow::c)' "$BASE/query")
[ "$body" = "0" ] || fail "post-update query answered '$body', expected '0'"

echo "== fan-out: /shards, aggregated /metrics, broadcast snapshot"
curl -fsS "$BASE/shards" | grep -q '"shard-3"' || fail "/shards misses shard-3"
metrics=$(curl -fsS "$BASE/metrics")
echo "$metrics" | grep -q 'shard="shard-0"' \
  || fail "aggregated metrics miss the shard label"
echo "$metrics" | grep -q 'standoff_router_shard_up{shard="shard-0"} 1' \
  || fail "shard-0 up-gauge not 1"
curl -fsS "${AUTH[@]}" -X POST "$BASE/admin/snapshot" \
  | grep -q '"ok": true' || fail "broadcast snapshot failed"

echo "== streaming: a response bigger than any single write buffer"
big="$workdir/big.xml"
{
  printf '<t><p start="0" end="20000"/>'
  for i in $(seq 0 5999); do
    printf '<w start="%d" end="%d"/>' "$i" $((i + 1))
  done
  printf '</t>'
} >"$big"
printf 'big.xml %d\n' "$(wc -c <"$big")" >"$workdir/bigbatch.txt"
cat "$big" >>"$workdir/bigbatch.txt"
printf '\n' >>"$workdir/bigbatch.txt"
curl -fsS "${AUTH[@]}" -X POST --data-binary @"$workdir/bigbatch.txt" \
  "$BASE/ingest?convert=none" | grep -q '"ok": true' || fail "big ingest failed"
BIGQ='doc("big.xml")//p/select-narrow::w'
curl -fsS "${AUTH[@]}" -X POST --data-binary "$BIGQ" \
  "$BASE/query" -o "$workdir/buffered.out"
curl -fsS -D "$headers" "${AUTH[@]}" -X POST --data-binary "$BIGQ" \
  "$BASE/query?stream=1" -o "$workdir/streamed.out"
grep -qi '^transfer-encoding: chunked' "$headers" \
  || fail "streamed reply is not chunked"
size=$(wc -c <"$workdir/streamed.out")
[ "$size" -gt 100000 ] || fail "streamed reply only $size bytes"
cmp -s "$workdir/buffered.out" "$workdir/streamed.out" \
  || fail "streamed bytes differ from the buffered reply"

echo "== supervision: kill -9 one shard, watch it come back"
shard_pid=$(pgrep -f "data/shard-0" | head -n1)
[ -n "$shard_pid" ] || fail "could not find the shard-0 process"
kill -9 "$shard_pid"
# the router must notice (readiness drops) ...
saw_down=0
for _ in $(seq 1 100); do
  code=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/healthz?ready=1" || true)
  if [ "$code" != 200 ]; then saw_down=1; break; fi
  sleep 0.05
done
[ "$saw_down" = 1 ] || fail "readiness never dropped after kill -9"
# ... restart it with backoff, and readiness must return
up=0
for _ in $(seq 1 150); do
  if curl -fsS "$BASE/healthz?ready=1" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ "$up" = 1 ] || { cat "$rlog" >&2; fail "shard-0 never recovered"; }
curl -fsS "$BASE/metrics" \
  | grep -q 'standoff_router_shard_restarts_total{shard="shard-0"} 1' \
  || fail "restart not counted"
# every acknowledged document survived the crash, wherever it lived
for i in $(seq 1 12); do
  name=$(printf 'doc-%02d.xml' "$i")
  got=$(curl -fsS "${AUTH[@]}" -X POST --data-binary \
    "count(doc(\"$name\")//p)" "$BASE/query")
  [ "$got" = "1" ] || fail "$name lost after shard crash (got '$got')"
done
# including the update acknowledged before the kill
body=$(curl -fsS "${AUTH[@]}" -X POST --data-binary \
  'count(doc("doc-01.xml")//p/select-narrow::c)' "$BASE/query")
[ "$body" = "0" ] || fail "acknowledged update lost after crash"

echo "== graceful shutdown: router exits 0 and reaps every shard"
kill -TERM $router_pid
status=0
wait $router_pid || status=$?
[ "$status" = 0 ] || { cat "$rlog" >&2; fail "router exited $status on SIGTERM"; }
if pgrep -f "data/shard-" >/dev/null 2>&1; then
  fail "orphaned shard processes after router shutdown"
fi

echo "PASS: router smoke test"
