(* Benchmark harness regenerating every table and figure of the paper's
   evaluation, plus Bechamel micro-benchmarks of the core algorithms.

   Usage:
     main.exe                          run everything with defaults
     main.exe table-3-1                the §3.1 StandOff-join example table
     main.exe figure-4                 the Listing 1 execution trace
     main.exe figure-6 [options]       the XMark sweep (3 strategies + DNF)
     main.exe staircase-vs-standoff    §4.6 claim: select-narrow vs descendant
     main.exe planner [--scale S] [--jobs N]   optimized plan vs direct lowering
     main.exe scaling [--jobs N]       merge-join throughput vs annotation count
     main.exe parallel-scaling [opts]  jobs sweep: speedup curves (CSV/JSON)
     main.exe obs-overhead [opts]      metrics-enabled vs disabled latency
     main.exe cache [opts]             result cache: cold vs warm, hit rate
     main.exe dataguide [opts]         DataGuide path index: guide-on vs off
     main.exe serve [opts]             HTTP server: latency/throughput, 503 probe
     main.exe persist [opts]           WAL throughput, recovery time, snapshots
     main.exe ingest [opts]            bulk ingestion vs per-document loads
     main.exe router [opts]            shard router: 1 process vs N shards
     main.exe micro                    Bechamel micro-benchmarks

   figure-6 options:
     --scales s1,s2,...   XMark scale factors     (default 0.002,0.01,0.02,0.1,0.2)
     --timeout SECONDS    per-point DNF budget    (default 10)
     --queries Q1,Q2,...  subset of Q1 Q2 Q6 Q7   (default all)
     --jobs N             parallelism of every engine (default STANDOFF_JOBS or 1)

   parallel-scaling options:
     --scale S            single-document XMark scale    (default 0.1)
     --shards N           documents in the sharded run   (default 6)
     --shard-scale S      XMark scale of each shard      (default 0.02)
     --jobs j1,j2,...     jobs counts to sweep           (default 1,2,4,8)
     --repeats N          timed runs per point (median)  (default 5)
     --queries Q1,...     subset of Q1 Q2 Q6 Q7          (default all)
     --csv FILE           write per-point rows as CSV
     --json FILE          write the sweep as JSON (BENCH_parallel.json shape)

   obs-overhead options:
     --scale S            XMark scale factor            (default 0.02)
     --repeats N          ~50ms samples per mode (min)  (default 15)
     --queries Q1,...     subset of Q1 Q2 Q6 Q7         (default all)
     --json FILE          output file                   (default BENCH_obs.json)
     --no-json            skip the JSON file

   cache options:
     --scale S            XMark scale factor            (default 0.02)
     --repeats N          timed runs per mode (median)  (default 5)
     --queries Q1,...     subset of Q1 Q2 Q6 Q7         (default all)
     --json FILE          output file                   (default BENCH_cache.json)
     --no-json            skip the JSON file

   dataguide options:
     --scales s1,s2,...   XMark scale factors           (default 0.1,0.2)
     --repeats N          timed runs per point (median) (default 5)
     --queries Q1,...     subset of Q1 Q2 Q6 Q7         (default all)
     --json FILE          output file                   (default BENCH_dataguide.json)
     --no-json            skip the JSON file

   serve options:
     --scale S            XMark scale factor            (default 0.02)
     --clients N          concurrent socket clients     (default 8)
     --requests N         keep-alive requests per client (default 40)
     --workers w1,w2,...  worker counts to sweep        (default 1,4,8)
     --queries Q1,...     subset of Q1 Q2 Q6 Q7         (default all)
     --json FILE          output file                   (default BENCH_server.json)
     --no-json            skip the JSON file

   persist options:
     --updates N          updates per throughput point  (default 5000)
     --sweep n1,n2,...    WAL lengths for recovery sweep (default 1000,5000,10000)
     --json FILE          output file                   (default BENCH_persist.json)
     --no-json            skip the JSON file

   The paper benchmarked 11MB-1100MB documents (scale 0.1-10) with a
   one-hour DNF budget on 2006 hardware; the default sweep uses the
   same 1:5:10:50:100 size ratios at 1/50 scale with a 10 s budget, so
   the crossovers and DNFs land in the same relative places. *)

module Timing = Standoff_util.Timing
module Vec = Standoff_util.Vec
module Pool = Standoff_util.Pool
module Doc = Standoff_store.Doc
module Blob = Standoff_store.Blob
module Collection = Standoff_store.Collection
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area
module Config = Standoff.Config
module Op = Standoff.Op
module Annots = Standoff.Annots
module Join = Standoff.Join
module MJ = Standoff.Merge_join_ll
module Axes = Standoff_xpath.Axes
module Node_test = Standoff_xpath.Node_test
module Engine = Standoff_xquery.Engine
module Metrics = Standoff_obs.Metrics
module Trace = Standoff_obs.Trace
module Http = Standoff_server.Http
module Server = Standoff_server.Server
module Gen = Standoff_xmark.Gen
module Setup = Standoff_xmark.Setup
module Standoffify = Standoff_xmark.Standoffify
module Queries = Standoff_xmark.Queries

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Experiment E1: the §3.1 table                                       *)

let figure1_doc =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let table_3_1 () =
  section "Table (section 3.1): StandOff Joins between U2 and Shots";
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"figure1.xml" figure1_doc);
  let engine = Engine.create coll in
  Printf.printf "%-45s| %s\n" "StandOff Join" "Matches";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun op ->
      let query =
        Printf.sprintf
          "for $s in doc(\"figure1.xml\")//music[@artist = \"U2\"]/%s::shot \
           return string($s/@id)"
          (Op.to_string op)
      in
      let r = Engine.run engine query in
      Printf.printf "%-45s| %s\n"
        (Printf.sprintf "%s(//music[artist=\"U2\"],//shot)" (Op.to_string op))
        (String.concat " "
           (String.split_on_char '\n' r.Engine.serialized)))
    Op.all

(* ------------------------------------------------------------------ *)
(* Experiment E2: the Figure 4 execution trace                         *)

let figure4_doc =
  "<t>\
   <c1 start=\"0\" end=\"15\"/>\
   <c2 start=\"12\" end=\"35\"/>\
   <c3 start=\"20\" end=\"30\"/>\
   <c4 start=\"55\" end=\"80\"/>\
   <r1 start=\"5\" end=\"10\"/>\
   <r2 start=\"22\" end=\"45\"/>\
   <r3 start=\"40\" end=\"60\"/>\
   <r4 start=\"65\" end=\"70\"/>\
   </t>"

let figure_4 () =
  section "Figure 4: execution trace of loop-lifted StandOff MergeJoin";
  let d = Doc.parse ~name:"figure4" figure4_doc in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 1; 2; 1; 1 |]
      ~pres:[| 2; 3; 4; 5 |]
  in
  let cands =
    Annots.candidate_index annots ~candidates:(Some [| 6; 7; 8; 9 |])
  in
  let name pre = Printf.sprintf "%s" (Option.get (Doc.name_of d pre)) in
  let step = ref 0 in
  let trace ev =
    incr step;
    let describe =
      match ev with
      | MJ.Add_active { iter; ctx } ->
          Printf.sprintf "add %s to active list (iter %d)" (name ctx) iter
      | MJ.Skip_covered { iter; ctx } ->
          Printf.sprintf "skip %s: covered within iter %d (lines 11-18)"
            (name ctx) iter
      | MJ.Replace_active { iter; removed; by } ->
          Printf.sprintf "replace %s by %s in iter %d (line 41)" (name removed)
            (name by) iter
      | MJ.Trim_active { iter; ctx } ->
          Printf.sprintf "remove %s from active list (iter %d, lines 29-31)"
            (name ctx) iter
      | MJ.Emit { iter; ctx; cand } ->
          Printf.sprintf "add (iter%d, %s) to result via %s (lines 32-34)" iter
            (name cand) (name ctx)
      | MJ.Skip_candidates { from_row; to_row } ->
          Printf.sprintf "skip candidate rows %d..%d (lines 21-24)" from_row
            (to_row - 1)
    in
    Printf.printf "%2d  %s\n" !step describe
  in
  let matches = MJ.select_narrow ~trace ~single_region:true context cands in
  Printf.printf "result: %s\n"
    (String.concat " "
       (List.map
          (fun m -> Printf.sprintf "(iter%d, %s)" m.MJ.m_iter (name m.MJ.m_cand))
          (Vec.to_list matches)));
  Printf.printf
    "(paper's result set; the printed pseudo-code's cross-iteration skip of\n\
    \ c3 is replaced by a same-iteration replace, see DESIGN.md)\n"

(* ------------------------------------------------------------------ *)
(* Experiment E3 + E5: Figure 6                                        *)

type cell =
  | Time of float
  | Dnf of float

let cell_to_string = function
  | Time t when t < 0.0095 -> Printf.sprintf "%.1fms" (t *. 1000.0)
  | Time t -> Printf.sprintf "%.2fs" t
  | Dnf _ -> "DNF"

let strategies_for_figure6 =
  [
    (Config.Udf_no_candidates, "XQuery Function (no candidates)");
    (Config.Udf_candidates, "XQuery Function with Candidate Seq.");
    (Config.Basic_merge, "Basic StandOff MergeJoin");
    (Config.Loop_lifted, "Loop-Lifted StandOff MergeJoin");
  ]

let figure_6_body ~record ~scales ~timeout ~queries ~jobs () =
  section "Figure 6: StandOff XMark queries (seconds; DNF = did not finish)";
  Printf.printf
    "timeout per point: %gs; paper sizes 11MB-1100MB map to these scale\n\
     factors at 1/50 size (same 1:5:10:50:100 ratios)\n"
    timeout;
  if jobs > 1 then Printf.printf "parallelism: %d jobs per engine\n" jobs;
  let setups =
    List.map
      (fun scale ->
        let (setup, t) =
          Timing.time (fun () ->
              Setup.build ~scale ~with_standard:false ~jobs ())
        in
        Printf.printf "built xmark scale %g (%s serialized) in %.2fs\n%!" scale
          (Setup.size_label setup.Setup.serialized_size) t;
        (* Warm the region index so measurements see the index as part
           of the stored document, as in the paper (§4.3). *)
        ignore
          (Engine.run setup.Setup.engine ~rollback_constructed:true
             (Printf.sprintf
                "count(doc(\"%s\")//site/select-narrow::people)"
                setup.Setup.standoff_doc));
        setup)
      scales
  in
  let run_point setup strategy query =
    let cell =
      match
        Engine.run_with_timeout setup.Setup.engine ~strategy ~seconds:timeout
          (query.Queries.standoff setup.Setup.standoff_doc)
      with
      | Timing.Finished (_, t) -> Time t
      | Timing.Timed_out t -> Dnf t
    in
    record ~query ~strategy ~setup cell;
    cell
  in
  List.iter
    (fun query ->
      Printf.printf "\nXMark %s - %s\n" query.Queries.id
        query.Queries.description;
      Printf.printf "%-38s" "";
      List.iter
        (fun s ->
          Printf.printf "%12s"
            (Setup.size_label s.Setup.serialized_size))
        setups;
      print_newline ();
      Printf.printf "%s\n" (String.make (38 + (12 * List.length setups)) '-');
      List.iter
        (fun (strategy, label) ->
          Printf.printf "%-38s" label;
          List.iter
            (fun setup ->
              let c = run_point setup strategy query in
              Printf.printf "%12s" (cell_to_string c);
              flush stdout)
            setups;
          print_newline ())
        strategies_for_figure6)
    queries

let figure_6 ?csv ~scales ~timeout ~queries ~jobs () =
  let csv_oc = Option.map open_out csv in
  Option.iter
    (fun oc -> output_string oc "query,strategy,scale,size_bytes,seconds,dnf\n")
    csv_oc;
  let record ~query ~strategy ~setup cell =
    Option.iter
      (fun oc ->
        let seconds, dnf = match cell with Time t -> (t, 0) | Dnf t -> (t, 1) in
        Printf.fprintf oc "%s,%s,%g,%d,%.6f,%d\n" query.Queries.id
          (Config.strategy_to_string strategy)
          setup.Setup.scale setup.Setup.serialized_size seconds dnf)
      csv_oc
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter close_out_noerr csv_oc;
      Option.iter (Printf.printf "\nwrote %s\n") csv)
    (fun () -> figure_6_body ~record ~scales ~timeout ~queries ~jobs ())

(* ------------------------------------------------------------------ *)
(* Experiment E4: select-narrow vs descendant Staircase Join           *)

let staircase_vs_standoff () =
  section "Staircase Join vs StandOff MergeJoin (section 4.6 claim: <20% gap)";
  (* Unpermuted stand-off document: the tree still mirrors the regions,
     so descendant:: and select-narrow:: return the same nodes. *)
  let setup = Setup.build ~scale:0.05 ~permute:false ~with_standard:false () in
  let doc_id =
    Option.get (Collection.doc_id_of_name setup.Setup.coll setup.Setup.standoff_doc)
  in
  let d = Collection.doc setup.Setup.coll doc_id in
  let annots = Standoff.Catalog.annots (Engine.catalog setup.Setup.engine)
      Config.default d
  in
  (* Loop-lifted context: every open auction is its own iteration, the
     shape of XMark Q2. *)
  let auctions = Doc.elements_named d "open_auction" in
  let iters = Array.init (Array.length auctions) Fun.id in
  let test = Node_test.Name "bidder" in
  let candidates = Doc.elements_named d "bidder" in
  let run_descendant () =
    Axes.eval_lifted d Axes.Descendant ~context_iters:iters
      ~context_pres:auctions ~test
  in
  let run_standoff () =
    Join.run_lifted Op.Select_narrow Config.Loop_lifted annots ~loop:iters
      ~context_iters:iters ~context_pres:auctions ~candidates:(Some candidates)
      ()
  in
  (* Same answers first. *)
  let d_iters, d_pres = run_descendant () in
  let s_iters, s_pres = run_standoff () in
  let same = (d_iters, d_pres) = (s_iters, s_pres) in
  Printf.printf "contexts: %d auctions; results: %d bidders; agree: %b\n"
    (Array.length auctions) (Array.length d_pres) same;
  (* Interleave the two measurements so GC and cache drift hit both
     sides equally; report the median of per-batch means. *)
  let batch n f =
    let t0 = Timing.now () in
    for _ = 1 to n do
      ignore (f ())
    done;
    (Timing.now () -. t0) /. float_of_int n
  in
  (* Settle the heap first — in the combined run this phase inherits
     garbage from the Figure 6 sweep. *)
  Gc.compact ();
  ignore (batch 10 run_descendant);
  ignore (batch 10 run_standoff);
  let batches = 9 and per_batch = 20 in
  let desc_times = Array.init batches (fun _ -> 0.0) in
  let so_times = Array.init batches (fun _ -> 0.0) in
  for i = 0 to batches - 1 do
    desc_times.(i) <- batch per_batch run_descendant;
    so_times.(i) <- batch per_batch run_standoff
  done;
  let median a =
    let b = Array.copy a in
    Array.sort compare b;
    b.(Array.length b / 2)
  in
  let t_desc = median desc_times in
  let t_so = median so_times in
  Printf.printf
    "loop-lifted descendant (Staircase Join): %8.3fms\n\
     loop-lifted select-narrow (StandOff):    %8.3fms\n\
     overhead: %+.1f%%  (paper reports select-narrow <20%% slower)\n"
    (t_desc *. 1000.0) (t_so *. 1000.0)
    ((t_so /. t_desc -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Scaling: raw loop-lifted merge-join throughput vs annotation count
   (supports the ">GB interactive querying" claim of §4.6)             *)

let scaling ?(jobs = 1) () =
  section "Scaling: loop-lifted StandOff MergeJoin throughput";
  let pool = if jobs > 1 then Some (Pool.shared ~jobs) else None in
  Printf.printf
    "nested annotation forests (XMark-like shape); context = every 10th\n\
     annotation, its own iteration; candidates = all annotations\n";
  Printf.printf "jobs: %d%s\n\n" jobs
    (if jobs > 1 then " (parallel index build and chunked sweeps)" else "");
  Printf.printf "%12s %14s %14s %16s\n" "annotations" "sweep" "total query"
    "rows/sec";
  List.iter
    (fun n ->
      (* A forest of depth-3 nests: parent [k, k+99], two children, six
         grandchildren each — overlap structure like shredded text. *)
      let buf = Buffer.create (n * 24) in
      Buffer.add_string buf "<t>";
      let count = ref 0 in
      let k = ref 0 in
      while !count < n do
        let base = !k * 120 in
        Buffer.add_string buf
          (Printf.sprintf "<p start=\"%d\" end=\"%d\"/>" base (base + 99));
        incr count;
        for c = 0 to 1 do
          let cb = base + (c * 50) in
          Buffer.add_string buf
            (Printf.sprintf "<c start=\"%d\" end=\"%d\"/>" cb (cb + 45));
          incr count;
          for g = 0 to 5 do
            let gb = cb + (g * 7) in
            Buffer.add_string buf
              (Printf.sprintf "<g start=\"%d\" end=\"%d\"/>" gb (gb + 6));
            incr count
          done
        done;
        incr k
      done;
      Buffer.add_string buf "</t>";
      let d = Doc.parse ~name:(Printf.sprintf "scale%d" n) (Buffer.contents buf) in
      let annots = Annots.extract ?pool Config.default d in
      let ids = annots.Annots.ids in
      let m = Array.length ids in
      let ctx = Array.init (m / 10) (fun i -> ids.(i * 10)) in
      let iters = Array.init (Array.length ctx) Fun.id in
      let context = MJ.context_of_annotations annots ~iters ~pres:ctx in
      let (matches, t_sweep) =
        Timing.time (fun () ->
            MJ.select_narrow ~single_region:true context annots.Annots.index)
      in
      let (_, t_total) =
        Timing.time (fun () ->
            Join.run_lifted Op.Select_narrow Config.Loop_lifted annots ?pool
              ~loop:iters ~context_iters:iters ~context_pres:ctx
              ~candidates:None ())
      in
      Printf.printf "%12d %12.1fms %12.1fms %16.0f\n%!" m
        (t_sweep *. 1000.0) (t_total *. 1000.0)
        (float_of_int (Vec.length matches) /. t_sweep))
    [ 10_000; 100_000; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* Ablation: sorted-list vs lazy-heap active set (paper §5 suggests a
   heap "in data-distributions that cause it to grow long")            *)

let active_set_ablation () =
  section "Ablation: active-set structure (sorted list vs lazy heap)";
  Printf.printf
    "adversarial input: n concurrently-active iterations whose region ends\n\
     grow with their starts, so every list insertion lands at the head\n\n";
  let build_inputs n =
    let base = 10 * n in
    let buf = Buffer.create (n * 32) in
    Buffer.add_string buf "<t>";
    for i = 0 to n - 1 do
      (* starts ascend while ends ascend too: worst case for the list. *)
      Buffer.add_string buf
        (Printf.sprintf "<c start=\"%d\" end=\"%d\"/>" i (base + (2 * i)))
    done;
    for j = 0 to (n / 4) - 1 do
      Buffer.add_string buf
        (Printf.sprintf "<r start=\"%d\" end=\"%d\"/>" (n + j) (100 * n))
    done;
    Buffer.add_string buf "</t>";
    let d = Doc.parse ~name:(Printf.sprintf "adv%d" n) (Buffer.contents buf) in
    let annots = Annots.extract Config.default d in
    let ctx_pres = Doc.elements_named d "c" in
    let context =
      MJ.context_of_annotations annots
        ~iters:(Array.init (Array.length ctx_pres) Fun.id)
        ~pres:ctx_pres
    in
    let cands =
      Annots.candidate_index annots ~candidates:(Some (Doc.elements_named d "r"))
    in
    (context, cands)
  in
  Printf.printf "%10s %18s %18s\n" "n" "sorted list" "lazy heap";
  List.iter
    (fun n ->
      let context, cands = build_inputs n in
      let time kind =
        let t0 = Timing.now () in
        ignore
          (MJ.select_narrow ~active_set:kind ~single_region:true context cands);
        Timing.now () -. t0
      in
      let t_list = time Standoff.Active_set.Sorted_list in
      let t_heap = time Standoff.Active_set.Lazy_heap in
      Printf.printf "%10d %16.1fms %16.1fms\n" n (t_list *. 1000.0)
        (t_heap *. 1000.0))
    [ 1_000; 4_000; 16_000; 64_000 ];
  (* The benign distribution of the XMark workload: disjoint regions,
     at most one live iteration, where the simple list is the better
     constant. *)
  Printf.printf
    "\nbenign input (disjoint regions, active size 1, XMark-like):\n";
  let benign n =
    let buf = Buffer.create (n * 32) in
    Buffer.add_string buf "<t>";
    for i = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "<c start=\"%d\" end=\"%d\"/>" (10 * i) ((10 * i) + 4))
    done;
    for i = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "<r start=\"%d\" end=\"%d\"/>" ((10 * i) + 1) ((10 * i) + 3))
    done;
    Buffer.add_string buf "</t>";
    let d = Doc.parse ~name:(Printf.sprintf "ben%d" n) (Buffer.contents buf) in
    let annots = Annots.extract Config.default d in
    let ctx_pres = Doc.elements_named d "c" in
    let context =
      MJ.context_of_annotations annots
        ~iters:(Array.init (Array.length ctx_pres) Fun.id)
        ~pres:ctx_pres
    in
    let cands =
      Annots.candidate_index annots ~candidates:(Some (Doc.elements_named d "r"))
    in
    (context, cands)
  in
  let context, cands = benign 64_000 in
  let time kind =
    let t0 = Timing.now () in
    ignore (MJ.select_narrow ~active_set:kind ~single_region:true context cands);
    Timing.now () -. t0
  in
  Printf.printf "%10d %16.1fms %16.1fms\n" 64_000
    (time Standoff.Active_set.Sorted_list *. 1000.0)
    (time Standoff.Active_set.Lazy_heap *. 1000.0)

(* ------------------------------------------------------------------ *)
(* Planner: optimized plan vs direct (unoptimized) lowering            *)

let planner ?(scale = 0.01) ?(jobs = 1) () =
  section "Planner: optimized plan vs direct lowering (XMark queries)";
  let setup = Setup.build ~scale ~with_standard:false ~jobs () in
  Printf.printf "xmark scale %g (%s serialized), %d jobs\n\n" scale
    (Setup.size_label setup.Setup.serialized_size) jobs;
  let engine = setup.Setup.engine in
  (* Warm the region index outside the measurements. *)
  ignore
    (Engine.run engine ~rollback_constructed:true
       (Printf.sprintf "count(doc(\"%s\")//site/select-narrow::people)"
          setup.Setup.standoff_doc));
  Printf.printf "%-6s %12s %12s %10s %8s\n" "query" "direct" "planned"
    "speedup" "agree";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun query ->
      let text = query.Queries.standoff setup.Setup.standoff_doc in
      let measure ~optimize =
        let prepared = Engine.prepare engine ~optimize text in
        (* One warm-up run, then the median of five. *)
        let once () =
          let (r, t) =
            Timing.time (fun () ->
                Engine.run_prepared engine ~rollback_constructed:true prepared)
          in
          (r.Engine.serialized, t)
        in
        let serialized, _ = once () in
        let times = Array.init 5 (fun _ -> snd (once ())) in
        Array.sort compare times;
        (serialized, times.(Array.length times / 2))
      in
      let direct_out, t_direct = measure ~optimize:false in
      let planned_out, t_planned = measure ~optimize:true in
      Printf.printf "%-6s %10.2fms %10.2fms %9.2fx %8b\n%!" query.Queries.id
        (t_direct *. 1000.0) (t_planned *. 1000.0)
        (t_direct /. t_planned)
        (String.equal direct_out planned_out))
    Queries.all;
  Printf.printf
    "\n(direct = structural lowering evaluated as-is; planned = after\n\
    \ candidate pushdown, step fusion, and per-operator strategy selection)\n"

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the jobs sweep of the multicore execution layer.
   Two shapes, matching the two levels of parallelism:

   - single document: one XMark instance, chunked merge sweeps inside
     each loop-lifted StandOff join (parallelism bounded by the number
     of loop iterations of the dominant join);
   - sharded collection: N XMark instances, the engine fans the
     prepared query out one shard per document
     ([Engine.run_prepared_sharded]), which parallelizes the whole
     evaluation, not just the sweeps.

   Every point re-checks that its serialized result is byte-identical
   to the jobs=1 run of the same shape. *)

let replace_all ~needle ~by s =
  let nl = String.length needle in
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + nl <= n && String.equal (String.sub s !i nl) needle then begin
      Buffer.add_string buf by;
      i := !i + nl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* The stock queries address their document as [doc("name")]; a shard
   is addressed by its context item instead, so drop the doc() call
   and let the leading path resolve from the shard root. *)
let sharded_query_text q =
  replace_all ~needle:"doc(\"@SHARD@\")" ~by:"" (q.Queries.standoff "@SHARD@")

let build_shard_collection ~shards ~shard_scale =
  let coll = Collection.create () in
  for i = 1 to shards do
    let dom =
      Gen.generate { Gen.scale = shard_scale; seed = Int64.of_int (1000 + i) }
    in
    let transformed = Standoffify.transform dom in
    ignore
      (Collection.add coll
         (Doc.of_dom
            ~name:(Printf.sprintf "shard%d.xml" i)
            transformed.Standoffify.doc));
    Collection.add_blob coll
      (Blob.of_string
         ~name:(Printf.sprintf "shard%d.blob" i)
         transformed.Standoffify.blob)
  done;
  coll

type ps_row = {
  ps_mode : string;  (* "single-doc" | "sharded" *)
  ps_query : string;
  ps_jobs : int;
  ps_seconds : float;
  ps_speedup : float;  (* jobs=1 median over this median *)
  ps_identical : bool;  (* serialized result = jobs=1 result *)
}

let parallel_scaling ?(scale = 0.1) ?(shards = 6) ?(shard_scale = 0.02)
    ?(jobs_list = [ 1; 2; 4; 8 ]) ?(repeats = 5) ?csv ?json ~queries () =
  section "Parallel scaling: StandOff XMark queries, jobs sweep";
  let median times =
    let b = Array.copy times in
    Array.sort compare b;
    b.(Array.length b / 2)
  in
  let rows = ref [] in
  (* One sweep line: set the engine's jobs, one warm-up run, then the
     median of [repeats] timed runs.  The pool is torn down between
     points so a point never inherits the previous point's workers. *)
  let sweep ~mode ~engine ~run_once label =
    Printf.printf "%-8s" label;
    let baseline = ref nan in
    let base_out = ref "" in
    List.iter
      (fun jobs ->
        Engine.set_jobs engine jobs;
        let out = run_once () in
        let times = Array.init repeats (fun _ -> snd (Timing.time run_once)) in
        Engine.shutdown engine;
        let t = median times in
        if Float.is_nan !baseline then begin
          baseline := t;
          base_out := out
        end;
        let row =
          {
            ps_mode = mode;
            ps_query = label;
            ps_jobs = jobs;
            ps_seconds = t;
            ps_speedup = !baseline /. t;
            ps_identical = String.equal out !base_out;
          }
        in
        rows := row :: !rows;
        Printf.printf "%10.1fms" (t *. 1000.0);
        flush stdout)
      jobs_list;
    let mine =
      List.filter
        (fun r -> r.ps_mode = mode && r.ps_query = label)
        !rows
    in
    let best =
      List.fold_left (fun acc r -> max acc r.ps_speedup) 1.0 mine
    in
    Printf.printf "%8.2fx %9b\n" best (List.for_all (fun r -> r.ps_identical) mine)
  in
  let header () =
    Printf.printf "%-8s" "query";
    List.iter (fun j -> Printf.printf "%12s" (Printf.sprintf "jobs=%d" j)) jobs_list;
    Printf.printf "%9s %9s\n" "best" "identical";
    Printf.printf "%s\n"
      (String.make (8 + (12 * List.length jobs_list) + 19) '-')
  in
  (* --- single document: chunked merge sweeps ---------------------- *)
  let setup = Setup.build ~scale ~with_standard:false ~jobs:1 () in
  Printf.printf
    "\nsingle document: xmark scale %g (%s), loop-lifted, chunked sweeps\n"
    scale
    (Setup.size_label setup.Setup.serialized_size);
  header ();
  let engine = setup.Setup.engine in
  (* Build the region index outside the measurements (§4.3: the index
     is part of the stored document). *)
  ignore
    (Engine.run engine ~rollback_constructed:true
       (Printf.sprintf "count(doc(\"%s\")//site/select-narrow::people)"
          setup.Setup.standoff_doc));
  List.iter
    (fun q ->
      let prepared =
        Engine.prepare engine ~strategy:Config.Loop_lifted
          (q.Queries.standoff setup.Setup.standoff_doc)
      in
      let run_once () =
        (Engine.run_prepared engine ~rollback_constructed:true prepared)
          .Engine.serialized
      in
      sweep ~mode:"single-doc" ~engine ~run_once q.Queries.id)
    queries;
  (* --- sharded collection: per-document fan-out ------------------- *)
  let coll = build_shard_collection ~shards ~shard_scale in
  Printf.printf
    "\nsharded collection: %d x xmark scale %g, one shard per document\n"
    shards shard_scale;
  header ();
  let engine2 = Engine.create ~jobs:1 coll in
  List.iter
    (fun q ->
      let prepared =
        Engine.prepare engine2 ~strategy:Config.Loop_lifted
          (sharded_query_text q)
      in
      let run_once () =
        (Engine.run_prepared_sharded engine2 ~rollback_constructed:true
           prepared)
          .Engine.serialized
      in
      sweep ~mode:"sharded" ~engine:engine2 ~run_once q.Queries.id)
    queries;
  let rows = List.rev !rows in
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.ps_speedup >= r.ps_speedup -> acc
        | _ -> Some r)
      None rows
  in
  Option.iter
    (fun b ->
      Printf.printf "\nbest speedup: %.2fx (%s %s at jobs=%d)\n" b.ps_speedup
        b.ps_mode b.ps_query b.ps_jobs)
    best;
  let all_identical = List.for_all (fun r -> r.ps_identical) rows in
  Printf.printf "all results identical to jobs=1: %b\n" all_identical;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc "mode,query,jobs,seconds,speedup,identical\n";
      List.iter
        (fun r ->
          Printf.fprintf oc "%s,%s,%d,%.6f,%.3f,%b\n" r.ps_mode r.ps_query
            r.ps_jobs r.ps_seconds r.ps_speedup r.ps_identical)
        rows;
      close_out oc;
      Printf.printf "wrote %s\n" file)
    csv;
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n  \"scale\": %g,\n  \"shards\": %d,\n  \"shard_scale\": %g,\n\
        \  \"jobs\": [%s],\n  \"repeats\": %d,\n  \"all_identical\": %b,\n"
        scale shards shard_scale
        (String.concat ", " (List.map string_of_int jobs_list))
        repeats all_identical;
      Option.iter
        (fun b ->
          Printf.fprintf oc
            "  \"best\": {\"mode\": \"%s\", \"query\": \"%s\", \"jobs\": %d, \
             \"speedup\": %.3f},\n"
            b.ps_mode b.ps_query b.ps_jobs b.ps_speedup)
        best;
      Printf.fprintf oc "  \"rows\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"mode\": \"%s\", \"query\": \"%s\", \"jobs\": %d, \
             \"seconds\": %.6f, \"speedup\": %.3f, \"identical\": %b}%s\n"
            r.ps_mode r.ps_query r.ps_jobs r.ps_seconds r.ps_speedup
            r.ps_identical
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json

(* ------------------------------------------------------------------ *)
(* Observability overhead: metrics armed vs disabled                   *)

type obs_row = {
  ob_query : string;
  ob_off_ms : float;  (* metrics disabled *)
  ob_on_ms : float;  (* metrics enabled, no trace, no sink *)
  ob_traced_ms : float;  (* metrics enabled + span collector *)
  ob_overhead_pct : float;  (* (on - off) / off *)
}

(* The instrumentation contract: with no trace collector and no sink
   attached, the always-on metrics must cost < 2% on the XMark queries.
   Each timing sample is a batch of runs sized to ~50ms (so clock
   granularity, GC pauses and scheduler preemption amortise away), the
   disabled/enabled/traced samples interleave (so drift hits all three
   equally), and each mode reports its fastest sample — the noise-free
   estimate of intrinsic cost. *)
let obs_overhead ?(scale = 0.02) ?(repeats = 15) ?json ~queries () =
  section "Observability overhead: metrics enabled vs disabled";
  let setup = Setup.build ~scale ~with_standard:false ~jobs:1 () in
  Printf.printf "xmark scale %g (%s), loop-lifted, jobs=1, %d samples/mode\n\n"
    scale
    (Setup.size_label setup.Setup.serialized_size)
    repeats;
  let engine = setup.Setup.engine in
  (* Region index built outside the measurements (§4.3: part of the
     stored document). *)
  ignore
    (Engine.run engine ~rollback_constructed:true
       (Printf.sprintf "count(doc(\"%s\")//site/select-narrow::people)"
          setup.Setup.standoff_doc));
  Printf.printf "%-8s%12s%12s%12s%10s\n" "query" "off" "on" "traced"
    "overhead";
  Printf.printf "%s\n" (String.make 54 '-');
  let all_ratios = ref [] in
  let rows =
    List.map
      (fun q ->
        let prepared =
          Engine.prepare engine ~strategy:Config.Loop_lifted
            (q.Queries.standoff setup.Setup.standoff_doc)
        in
        let run_once () =
          ignore (Engine.run_prepared engine ~rollback_constructed:true prepared)
        in
        let run_traced () =
          ignore
            (Engine.run_prepared engine ~rollback_constructed:true
               ~trace:(Trace.create ()) prepared)
        in
        (* Warm every mode once, and size batches off the warm run. *)
        Metrics.set_enabled false;
        let _, single = Timing.time run_once in
        Metrics.set_enabled true;
        run_once ();
        run_traced ();
        let batch = max 1 (int_of_float (0.1 /. Float.max 1e-6 single)) in
        let sample f =
          Gc.full_major ();
          let _, t = Timing.time (fun () -> for _ = 1 to batch do f () done) in
          t /. float_of_int batch
        in
        let best_off = ref infinity
        and best_on = ref infinity
        and best_traced = ref infinity in
        (* The off and on samples of one iteration run back-to-back, so
           slow environment drift (CPU throttling, noisy neighbours)
           hits both; their ratio isolates the instrumentation cost.
           The pair order alternates between iterations so that
           whichever side runs second inherits no systematic warm-up or
           boost-decay advantage.  The median ratio is the overhead
           estimate; the mins are reported for scale. *)
        let ratios = Array.make repeats nan in
        for i = 0 to repeats - 1 do
          let timed enabled =
            Metrics.set_enabled enabled;
            sample run_once
          in
          let off, on_ =
            if i land 1 = 0 then
              let off = timed false in
              (off, timed true)
            else
              let on_ = timed true in
              (timed false, on_)
          in
          ratios.(i) <- on_ /. off;
          best_off := Float.min !best_off off;
          best_on := Float.min !best_on on_;
          Metrics.set_enabled true;
          best_traced := Float.min !best_traced (sample run_traced)
        done;
        all_ratios := Array.to_list ratios @ !all_ratios;
        Array.sort compare ratios;
        let median_ratio = ratios.(repeats / 2) in
        let row =
          {
            ob_query = q.Queries.id;
            ob_off_ms = !best_off *. 1e3;
            ob_on_ms = !best_on *. 1e3;
            ob_traced_ms = !best_traced *. 1e3;
            ob_overhead_pct = (median_ratio -. 1.0) *. 100.0;
          }
        in
        Printf.printf "%-8s%10.3fms%10.3fms%10.3fms%9.2f%%\n" row.ob_query
          row.ob_off_ms row.ob_on_ms row.ob_traced_ms row.ob_overhead_pct;
        flush stdout;
        row)
      queries
  in
  Metrics.set_enabled true;
  (* Per-query medians over a dozen samples still carry a couple of
     percent of environment noise; the headline number pools every
     iteration's back-to-back ratio across all queries, which is the
     tightest drift-free estimate this harness can produce. *)
  let pooled = Array.of_list !all_ratios in
  Array.sort compare pooled;
  let overhead = (pooled.(Array.length pooled / 2) -. 1.0) *. 100.0 in
  let pass = overhead < 2.0 in
  Printf.printf "\npooled overhead (median over %d paired samples): %.2f%% \
                 (budget 2%%) -> %s\n"
    (Array.length pooled) overhead
    (if pass then "PASS" else "FAIL");
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n  \"scale\": %g,\n  \"repeats\": %d,\n  \"overhead_pct\": \
         %.3f,\n  \"budget_pct\": 2.0,\n  \"pass\": %b,\n  \"rows\": [\n"
        scale repeats overhead pass;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"query\": \"%s\", \"off_ms\": %.4f, \"on_ms\": %.4f, \
             \"traced_ms\": %.4f, \"overhead_pct\": %.3f}%s\n"
            r.ob_query r.ob_off_ms r.ob_on_ms r.ob_traced_ms r.ob_overhead_pct
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json

(* ------------------------------------------------------------------ *)
(* Result cache: cold vs warm repeat latency, hit-rate sweep,          *)
(* update-safety probe                                                 *)

type cache_row = {
  cb_query : string;
  cb_cold_ms : float;  (* median evaluated-run latency, cache off *)
  cb_warm_ms : float;  (* median repeat latency, result cache primed *)
  cb_speedup : float;
  cb_cacheable : bool;  (* false for constructor queries (never cached) *)
}

let bench_cache ?(scale = 0.02) ?(repeats = 5) ?json ~queries () =
  section "Result cache: cold vs warm repeat latency";
  let setup = Setup.build ~scale ~with_standard:false ~jobs:1 () in
  let coll = setup.Setup.coll in
  (* Two engines over the same stored collection, identical except for
     the caching level, so the cold/warm difference isolates the cache. *)
  let cold_engine = Engine.create ~jobs:1 ~cache:Engine.Cache_off coll in
  let warm_engine = Engine.create ~jobs:1 ~cache:Engine.Cache_result coll in
  (* Region index built outside the measurements (§4.3: part of the
     stored document). *)
  ignore
    (Engine.run cold_engine ~rollback_constructed:true
       (Printf.sprintf "count(doc(\"%s\")//site/select-narrow::people)"
          setup.Setup.standoff_doc));
  Printf.printf "xmark scale %g (%s), loop-lifted, jobs=1, median of %d\n\n"
    scale
    (Setup.size_label setup.Setup.serialized_size)
    repeats;
  Printf.printf "%-8s%12s%12s%10s%12s\n" "query" "cold" "warm" "speedup"
    "cacheable";
  Printf.printf "%s\n" (String.make 54 '-');
  let median a =
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let rows =
    List.map
      (fun q ->
        let text = q.Queries.standoff setup.Setup.standoff_doc in
        let time_runs engine prepared =
          Array.init repeats (fun _ ->
              Gc.full_major ();
              let _, t =
                Timing.time (fun () ->
                    ignore
                      (Engine.run_prepared engine ~rollback_constructed:true
                         prepared))
              in
              t)
        in
        let cold_prepared =
          Engine.prepare cold_engine ~strategy:Config.Loop_lifted text
        in
        let cold = median (time_runs cold_engine cold_prepared) in
        let warm_prepared =
          Engine.prepare warm_engine ~strategy:Config.Loop_lifted text
        in
        (* Prime, then check the stats delta over one repeat: a query
           that constructs nodes is never result-cached, so its repeats
           evaluate too and it reports cacheable=false. *)
        ignore
          (Engine.run_prepared warm_engine ~rollback_constructed:true
             warm_prepared);
        let hits_before =
          (Engine.result_cache_stats warm_engine).Standoff_cache.Lru.hits
        in
        let warm = median (time_runs warm_engine warm_prepared) in
        let hits_after =
          (Engine.result_cache_stats warm_engine).Standoff_cache.Lru.hits
        in
        let row =
          {
            cb_query = q.Queries.id;
            cb_cold_ms = cold *. 1e3;
            cb_warm_ms = warm *. 1e3;
            cb_speedup = cold /. Float.max 1e-9 warm;
            cb_cacheable = hits_after > hits_before;
          }
        in
        Printf.printf "%-8s%10.3fms%10.3fms%9.1fx%12b\n" row.cb_query
          row.cb_cold_ms row.cb_warm_ms row.cb_speedup row.cb_cacheable;
        flush stdout;
        row)
      queries
  in
  (* Hit-rate sweep: a mixed repeat workload (every query round-robin)
     against the warm engine; the steady-state hit rate is what the
     [standoff_cache_*{cache="result"}] metrics report in production. *)
  let sweep_rounds = 20 in
  let s0 = Engine.result_cache_stats warm_engine in
  for _ = 1 to sweep_rounds do
    List.iter
      (fun q ->
        ignore
          (Engine.run warm_engine ~strategy:Config.Loop_lifted
             ~rollback_constructed:true
             (q.Queries.standoff setup.Setup.standoff_doc)))
      queries
  done;
  let s1 = Engine.result_cache_stats warm_engine in
  let sweep_hits = s1.Standoff_cache.Lru.hits - s0.Standoff_cache.Lru.hits in
  let sweep_misses =
    s1.Standoff_cache.Lru.misses - s0.Standoff_cache.Lru.misses
  in
  let hit_rate =
    float_of_int sweep_hits /. Float.max 1.0 (float_of_int (sweep_hits + sweep_misses))
  in
  Printf.printf
    "\nhit-rate sweep: %d mixed runs -> %d hits / %d misses (%.1f%% hits)\n"
    (sweep_rounds * List.length queries)
    sweep_hits sweep_misses (hit_rate *. 100.0);
  (* Update-safety probe: query -> cached hit -> update -> same query
     must return the post-update answer (the generation stamp expired
     the entry). *)
  let update_safe =
    let coll2 = Collection.create () in
    let d =
      Doc.parse ~name:"upd.xml"
        "<t><p start=\"0\" end=\"10\"/><c start=\"2\" end=\"8\"/></t>"
    in
    ignore (Collection.add coll2 d);
    let e = Engine.create ~jobs:1 ~cache:Engine.Cache_result coll2 in
    let q = "count(doc(\"upd.xml\")//p/select-narrow::c)" in
    let before = (Engine.run e ~rollback_constructed:true q).Engine.serialized in
    ignore (Engine.run e ~rollback_constructed:true q);
    let pre_c = (Doc.elements_named d "c").(0) in
    Standoff.Update.set_region (Engine.catalog e) Config.default d ~pre:pre_c
      (Region.make_int 50 60);
    let after = (Engine.run e ~rollback_constructed:true q).Engine.serialized in
    String.trim before = "1" && String.trim after = "0"
  in
  Printf.printf "update safety (query -> update -> query): %s\n"
    (if update_safe then "PASS" else "FAIL");
  let speedup_of id =
    match List.find_opt (fun r -> r.cb_query = id) rows with
    | Some r -> Some r.cb_speedup
    | None -> None
  in
  let target_ok id =
    match speedup_of id with Some s -> s >= 5.0 | None -> true
  in
  let pass = target_ok "Q1" && target_ok "Q6" && update_safe in
  Printf.printf "warm-repeat target (Q1, Q6 >= 5x): %s\n"
    (if pass && update_safe then "PASS" else "FAIL");
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n  \"scale\": %g,\n  \"repeats\": %d,\n  \"hit_rate_sweep\": \
         {\"runs\": %d, \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f},\n\
        \  \"update_safe\": %b,\n  \"pass\": %b,\n  \"rows\": [\n"
        scale repeats
        (sweep_rounds * List.length queries)
        sweep_hits sweep_misses hit_rate update_safe pass;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"query\": \"%s\", \"cold_ms\": %.4f, \"warm_ms\": %.4f, \
             \"speedup\": %.2f, \"cacheable\": %b}%s\n"
            r.cb_query r.cb_cold_ms r.cb_warm_ms r.cb_speedup r.cb_cacheable
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json

(* ------------------------------------------------------------------ *)
(* DataGuide path index: guide-on vs guide-off on the Figure 6 set    *)

type dg_row = {
  dg_scale : float;
  dg_query : string;
  dg_form : string;  (* "standard" | "standoff" *)
  dg_off_ms : float;
  dg_on_ms : float;
  dg_speedup : float;
  dg_identical : bool;  (* serialized bytes equal guide-on vs guide-off *)
}

type dg_build = {
  dgb_scale : float;
  dgb_bytes : int;
  dgb_build_ms : float;  (* cold sequential build, all stored documents *)
  dgb_paths : int;  (* distinct label paths across the collection *)
}

let bench_dataguide ?(scales = [ 0.1; 0.2 ]) ?(repeats = 5) ?json ~queries () =
  section "DataGuide path index: guide-on vs guide-off";
  let median a =
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let rows = ref [] in
  let builds = ref [] in
  List.iter
    (fun scale ->
      let setup = Setup.build ~scale ~with_standard:true ~jobs:1 () in
      let coll = setup.Setup.coll in
      (* Two engines over the same stored collection, identical except
         for the DataGuide flag, so the on/off difference isolates the
         path index (cache off: every run pays a real evaluation). *)
      let off_engine =
        Engine.create ~jobs:1 ~cache:Engine.Cache_off ~dataguide:false coll
      in
      let on_engine =
        Engine.create ~jobs:1 ~cache:Engine.Cache_off ~dataguide:true coll
      in
      (* Region index built outside the measurements (§4.3: part of
         the stored document). *)
      ignore
        (Engine.run off_engine ~rollback_constructed:true
           (Printf.sprintf "count(doc(\"%s\")//site/select-narrow::people)"
              setup.Setup.standoff_doc));
      (* Cold guide construction, before any probe has cached one:
         the one-off price a first query pays per document. *)
      let build_ms, paths =
        Collection.fold_docs
          (fun (ms, np) _ d ->
            let g, t =
              Timing.time (fun () ->
                  Standoff_store.Dataguide.build ~generation:0 d)
            in
            (ms +. (t *. 1e3), np + Standoff_store.Dataguide.path_count g))
          (0.0, 0) coll
      in
      builds :=
        {
          dgb_scale = scale;
          dgb_bytes = setup.Setup.serialized_size;
          dgb_build_ms = build_ms;
          dgb_paths = paths;
        }
        :: !builds;
      Printf.printf
        "\nxmark scale %g (%s), loop-lifted, jobs=1, median of %d\n\
         cold guide build: %.2fms (%d label paths)\n\n"
        scale
        (Setup.size_label setup.Setup.serialized_size)
        repeats build_ms paths;
      Printf.printf "%-8s%-10s%12s%12s%10s%11s\n" "query" "form" "guide-off"
        "guide-on" "speedup" "identical";
      Printf.printf "%s\n" (String.make 63 '-');
      List.iter
        (fun q ->
          List.iter
            (fun (form, text) ->
              let time_engine engine =
                let prepared =
                  Engine.prepare engine ~strategy:Config.Loop_lifted text
                in
                (* Priming run: warms the lazy per-document structures
                   (element index; the guide itself on the on-engine),
                   so the medians compare steady-state evaluation and
                   the cold build cost stays in its own row. *)
                ignore
                  (Engine.run_prepared engine ~rollback_constructed:true
                     prepared);
                let times =
                  Array.init repeats (fun _ ->
                      Gc.full_major ();
                      let _, t =
                        Timing.time (fun () ->
                            ignore
                              (Engine.run_prepared engine
                                 ~rollback_constructed:true prepared))
                      in
                      t)
                in
                ( median times,
                  (Engine.run engine ~rollback_constructed:true text)
                    .Engine.serialized )
              in
              let off, off_bytes = time_engine off_engine in
              let on, on_bytes = time_engine on_engine in
              let row =
                {
                  dg_scale = scale;
                  dg_query = q.Queries.id;
                  dg_form = form;
                  dg_off_ms = off *. 1e3;
                  dg_on_ms = on *. 1e3;
                  dg_speedup = off /. Float.max 1e-9 on;
                  dg_identical = String.equal off_bytes on_bytes;
                }
              in
              rows := row :: !rows;
              Printf.printf "%-8s%-10s%10.3fms%10.3fms%9.2fx%11b\n%!"
                row.dg_query row.dg_form row.dg_off_ms row.dg_on_ms
                row.dg_speedup row.dg_identical)
            [
              ("standard", q.Queries.standard setup.Setup.standard_doc);
              ("standoff", q.Queries.standoff setup.Setup.standoff_doc);
            ])
        queries)
    scales;
  let rows = List.rev !rows in
  let builds = List.rev !builds in
  (* The tentpole target: the paper's Figure 5 form of Q2 at the
     largest benched scale must run at least twice as fast with the
     guide; and the guide must never change a byte of output. *)
  let largest = List.fold_left (fun acc s -> Float.max acc s) 0.0 scales in
  let q2_speedup =
    List.fold_left
      (fun acc r ->
        if r.dg_query = "Q2" && r.dg_form = "standoff" && r.dg_scale = largest
        then Some r.dg_speedup
        else acc)
      None rows
  in
  let identical = List.for_all (fun r -> r.dg_identical) rows in
  let q2_ok = match q2_speedup with Some s -> s >= 2.0 | None -> true in
  let pass = q2_ok && identical in
  Printf.printf "\nbyte-identical results guide-on vs guide-off: %s\n"
    (if identical then "PASS" else "FAIL");
  (match q2_speedup with
  | Some s ->
      Printf.printf "Q2 standoff speedup at scale %g (target >= 2x): %.2fx %s\n"
        largest s
        (if q2_ok then "PASS" else "FAIL")
  | None -> ());
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n  \"scales\": [%s],\n  \"repeats\": %d,\n  \"identical\": %b,\n\
        \  \"q2_standoff_speedup_largest\": %s,\n  \"pass\": %b,\n\
        \  \"builds\": [\n"
        (String.concat ", " (List.map (Printf.sprintf "%g") scales))
        repeats identical
        (match q2_speedup with
        | Some s -> Printf.sprintf "%.2f" s
        | None -> "null")
        pass;
      List.iteri
        (fun i b ->
          Printf.fprintf oc
            "    {\"scale\": %g, \"bytes\": %d, \"build_ms\": %.4f, \
             \"paths\": %d}%s\n"
            b.dgb_scale b.dgb_bytes b.dgb_build_ms b.dgb_paths
            (if i = List.length builds - 1 then "" else ","))
        builds;
      Printf.fprintf oc "  ],\n  \"rows\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"scale\": %g, \"query\": \"%s\", \"form\": \"%s\", \
             \"off_ms\": %.4f, \"on_ms\": %.4f, \"speedup\": %.2f, \
             \"identical\": %b}%s\n"
            r.dg_scale r.dg_query r.dg_form r.dg_off_ms r.dg_on_ms
            r.dg_speedup r.dg_identical
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json

(* ------------------------------------------------------------------ *)
(* Network service: concurrent socket clients against the HTTP server  *)

type sv_row = {
  sv_workers : int;
  sv_rps : float;
  sv_p50_ms : float;
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_errors : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let bench_serve ?(scale = 0.02) ?(clients = 8) ?(requests = 40)
    ?(worker_counts = [ 1; 4; 8 ]) ?json ~queries () =
  section "Network service: concurrent socket clients vs XMark";
  let setup = Setup.build ~scale ~with_standard:false ~jobs:1 () in
  (* Cache off so every request pays for a real evaluation — the sweep
     measures the serving stack, not the result cache (bench cache
     covers that).  jobs = 0: adaptive, so per-request parallelism
     shares the domain budget with the connection workers exactly as
     production does. *)
  let engine =
    Engine.create ~jobs:0 ~cache:Engine.Cache_off setup.Setup.coll
  in
  let texts =
    Array.of_list
      (List.map (fun q -> q.Queries.standoff setup.Setup.standoff_doc) queries)
  in
  (* Warm the evaluation path once per query, outside any measurement. *)
  Array.iter
    (fun t ->
      ignore
        (Engine.run engine ~strategy:Config.Loop_lifted
           ~rollback_constructed:true t))
    texts;
  Printf.printf
    "xmark scale %g (%s), %d clients x %d keep-alive requests each, \
     loop-lifted, cache off\n\n"
    scale
    (Setup.size_label setup.Setup.serialized_size)
    clients requests;
  Printf.printf "%-9s%13s%11s%11s%11s%9s\n" "workers" "throughput" "p50" "p95"
    "p99" "errors";
  Printf.printf "%s\n" (String.make 64 '-');
  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let run_point workers =
    let config =
      {
        Server.default_config with
        port = 0;
        workers;
        queue_capacity = 2 * clients;
        socket_timeout_s = 120.0;
        default_timeout_ms = None;
      }
    in
    let server = Server.create ~config engine in
    Server.start server;
    let port = Server.port server in
    (* Warm-up: one untimed pass over every query text through the
       freshly started server, so worker-domain spawn-up, scheduler
       start and first-touch allocation land outside the measurement. *)
    (let fd = connect port in
     Fun.protect
       ~finally:(fun () -> close_noerr fd)
       (fun () ->
         let reader = Http.reader fd in
         Array.iter
           (fun text ->
             Http.write_request fd ~meth:"POST"
               ~target:"/query?strategy=loop-lifted" text;
             ignore (Http.read_response reader))
           texts));
    let errors = Atomic.make 0 in
    let lat = Array.make (clients * requests) 0.0 in
    let client c () =
      let fd = connect port in
      let reader = Http.reader fd in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          for i = 0 to requests - 1 do
            let text = texts.((c + i) mod Array.length texts) in
            let t0 = Unix.gettimeofday () in
            Http.write_request fd ~meth:"POST"
              ~target:"/query?strategy=loop-lifted" text;
            let resp = Http.read_response reader in
            if resp.Http.status <> 200 then Atomic.incr errors;
            lat.((c * requests) + i) <- (Unix.gettimeofday () -. t0) *. 1e3
          done)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun c -> Thread.create (client c) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Server.stop server;
    Array.sort compare lat;
    let row =
      {
        sv_workers = workers;
        sv_rps = float_of_int (clients * requests) /. wall;
        sv_p50_ms = percentile lat 50.0;
        sv_p95_ms = percentile lat 95.0;
        sv_p99_ms = percentile lat 99.0;
        sv_errors = Atomic.get errors;
      }
    in
    Printf.printf "%-9d%11.1f/s%9.2fms%9.2fms%9.2fms%9d\n" workers row.sv_rps
      row.sv_p50_ms row.sv_p95_ms row.sv_p99_ms row.sv_errors;
    flush stdout;
    row
  in
  let rows = List.map run_point worker_counts in
  (* Overload probe: a burst of simultaneous connections against one
     worker and a one-slot queue — admission control must shed the
     excess with 503 rather than stall or crash. *)
  let burst = 4 * max 1 clients / 2 in
  let served, shed =
    let config =
      {
        Server.default_config with
        port = 0;
        workers = 1;
        queue_capacity = 1;
        socket_timeout_s = 30.0;
      }
    in
    let server = Server.create ~config engine in
    Server.start server;
    let port = Server.port server in
    let fds = List.init burst (fun _ -> connect port) in
    (* Let the acceptor admit (worker + queue slot) or shed the rest. *)
    Thread.delay 0.3;
    let served = ref 0 and shed = ref 0 in
    List.iter
      (fun fd ->
        (match
           (try Http.write_request fd ~meth:"GET" ~target:"/healthz" ""
            with Unix.Unix_error _ -> ());
           (Http.read_response (Http.reader fd)).Http.status
         with
        | 200 -> incr served
        | 503 -> incr shed
        | _ -> ()
        | exception (Http.Closed | Http.Bad_request _ | Unix.Unix_error _) ->
            ());
        (* Closing a served connection frees the worker for the next
           admitted one, so the queued connection is counted too. *)
        close_noerr fd)
      fds;
    Server.stop server;
    (!served, !shed)
  in
  Printf.printf
    "\noverload probe (workers=1, queue=1): %d connections -> %d served, %d \
     shed with 503 (%.0f%% shed)\n"
    burst served shed
    (100.0 *. float_of_int shed /. Float.max 1.0 (float_of_int burst));
  (* Monotonicity: with a shared domain budget, adding workers must not
     lose throughput.  10% tolerance absorbs run-to-run noise; on
     machines whose budget cannot actually host the sweep (fewer than 4
     domains) inversions are expected — multi-domain GC on one core —
     and the check is reported but not enforced. *)
  let tolerance = 0.10 in
  let inversions =
    let rec go = function
      | a :: (b :: _ as rest) ->
          (if b.sv_rps < a.sv_rps *. (1.0 -. tolerance) then [ (a, b) ]
           else [])
          @ go rest
      | _ -> []
    in
    go rows
  in
  let enforce_monotone = Pool.domain_budget () >= 4 in
  let monotone = inversions = [] in
  List.iter
    (fun (a, b) ->
      Printf.printf
        "throughput inversion: workers %d -> %d dropped %.1f -> %.1f rps \
         (> %.0f%% tolerance)%s\n"
        a.sv_workers b.sv_workers a.sv_rps b.sv_rps (100.0 *. tolerance)
        (if enforce_monotone then ""
         else " [not enforced: domain budget < 4]"))
    inversions;
  let pass =
    shed > 0
    && List.for_all (fun r -> r.sv_errors = 0) rows
    && ((not enforce_monotone) || monotone)
  in
  Printf.printf
    "serving criteria (no errors, overload shed > 0, monotone throughput%s): \
     %s\n"
    (if enforce_monotone then "" else " [informational]")
    (if pass then "PASS" else "FAIL");
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n\
        \  \"scale\": %g,\n\
        \  \"clients\": %d,\n\
        \  \"requests_per_client\": %d,\n\
        \  \"overload\": {\"connections\": %d, \"served\": %d, \"shed\": %d},\n\
        \  \"domain_budget\": %d,\n\
        \  \"monotone\": %b,\n\
        \  \"monotone_enforced\": %b,\n\
        \  \"pass\": %b,\n\
        \  \"rows\": [\n"
        scale clients requests burst served shed (Pool.domain_budget ())
        monotone enforce_monotone pass;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workers\": %d, \"throughput_rps\": %.1f, \"p50_ms\": \
             %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"errors\": %d}%s\n"
            r.sv_workers r.sv_rps r.sv_p50_ms r.sv_p95_ms r.sv_p99_ms
            r.sv_errors
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json;
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Shard router: aggregate update/ingest throughput, 1 process vs N
   shard processes behind the router.  Real OS processes with
   fsync=always, so the single-process baseline is bound by its one
   writer lock and one WAL while the shards fsync N logs
   concurrently — the scale-out the router exists to buy.             *)

module Router = Standoff_router.Router

type rt_row = {
  rt_label : string;
  rt_ingest_dps : float;  (* documents ingested per second *)
  rt_update_ups : float;  (* acknowledged updates per second *)
  rt_errors : int;
}

let bench_router ?(shards = 4) ?(docs = 256) ?(clients = 8) ?(updates = 100)
    ?json () =
  section "Shard router: multi-process scale-out";
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "standoff_server.exe"))
  in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "router: %s not found (dune build bin first)\n" exe;
    exit 1
  end;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let root = Filename.temp_file "standoff-bench-router" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  at_exit (fun () ->
      try rm_rf root with Sys_error _ | Unix.Unix_error _ -> ());
  let doc_name i = Printf.sprintf "doc-%03d.xml" i in
  let batch =
    let buf = Buffer.create (docs * 64) in
    for i = 0 to docs - 1 do
      let payload =
        Printf.sprintf "<d><w start=\"0\" end=\"5\"/>hello %d</d>" i
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n%s\n" (doc_name i) (String.length payload)
           payload)
    done;
    Buffer.contents buf
  in
  let connect port =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 60.0;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let oneshot port ~meth ~target body =
    let fd = connect port in
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        Http.write_request fd ~meth ~target body;
        Http.read_response (Http.reader fd))
  in
  let wait_ready ?(timeout_s = 30.0) port =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      let ok =
        match oneshot port ~meth:"GET" ~target:"/healthz?ready=1" "" with
        | { Http.status = 200; _ } -> true
        | _ -> false
        | exception _ -> false
      in
      if ok then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.1;
        go ()
      end
    in
    go ()
  in
  let free_port () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> failwith "free_port")
  in
  (* The measured load against one front port: a framed bulk ingest,
     then [clients] keep-alive connections hammering /update across
     the corpus (every document carries its annotation at pre=2). *)
  let measure label port =
    let t0 = Unix.gettimeofday () in
    let resp =
      oneshot port ~meth:"POST" ~target:"/ingest?convert=none" batch
    in
    let ingest_s = Unix.gettimeofday () -. t0 in
    if resp.Http.status <> 200 then begin
      Printf.eprintf "router bench: %s ingest failed (%d): %s\n" label
        resp.Http.status resp.Http.r_body;
      exit 1
    end;
    let errors = Atomic.make 0 in
    let client c () =
      let fd = connect port in
      let reader = Http.reader fd in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          for i = 0 to updates - 1 do
            let d = doc_name (((c * updates) + i) mod docs) in
            let target =
              Printf.sprintf "/update?doc=%s&pre=2&start=%d&end=%d" d (i mod 4)
                ((i mod 4) + 5)
            in
            match
              Http.write_request fd ~meth:"POST" ~target "";
              (Http.read_response reader).Http.status
            with
            | 200 -> ()
            | _ -> Atomic.incr errors
            | exception _ ->
                Atomic.incr errors
          done)
    in
    let t1 = Unix.gettimeofday () in
    let threads = List.init clients (fun c -> Thread.create (client c) ()) in
    List.iter Thread.join threads;
    let update_s = Unix.gettimeofday () -. t1 in
    let row =
      {
        rt_label = label;
        rt_ingest_dps = float_of_int docs /. ingest_s;
        rt_update_ups = float_of_int (clients * updates) /. update_s;
        rt_errors = Atomic.get errors;
      }
    in
    Printf.printf "%-14s%14.1f docs/s%14.1f upd/s%9d errors\n" label
      row.rt_ingest_dps row.rt_update_ups row.rt_errors;
    flush stdout;
    row
  in
  Printf.printf
    "%d docs, %d clients x %d updates, fsync=always, shard exe: real \
     processes\n\n"
    docs clients updates;
  Printf.printf "%-14s%20s%20s%16s\n" "topology" "ingest" "updates" "";
  Printf.printf "%s\n" (String.make 64 '-');
  (* Baseline: one standoff-server process, its own WAL, no router. *)
  let single =
    let port = free_port () in
    let argv =
      [|
        exe; "--host"; "127.0.0.1"; "--port"; string_of_int port;
        "--data-dir"; Filename.concat root "single"; "--fsync"; "always";
      |]
    in
    let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid = Unix.create_process exe argv Unix.stdin dev_null Unix.stderr in
    Unix.close dev_null;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0)))
      (fun () ->
        if not (wait_ready port) then begin
          Printf.eprintf "router bench: single server never became ready\n";
          exit 1
        end;
        measure "1 process" port)
  in
  (* Routed: [shards] managed shard processes behind the router. *)
  let routed =
    let specs =
      List.init shards (fun i ->
          let name = Printf.sprintf "shard-%d" i in
          let sport = free_port () in
          let argv =
            [|
              exe; "--host"; "127.0.0.1"; "--port"; string_of_int sport;
              "--data-dir"; Filename.concat root name; "--fsync"; "always";
            |]
          in
          {
            Router.sp_name = name;
            sp_host = "127.0.0.1";
            sp_port = sport;
            sp_spawn = Some (exe, argv);
          })
    in
    let router =
      Router.create ~config:{ Router.default_config with port = 0 } specs
    in
    Router.start router;
    Fun.protect
      ~finally:(fun () -> Router.stop router)
      (fun () ->
        if not (wait_ready (Router.port router)) then begin
          Printf.eprintf "router bench: shards never became ready\n";
          exit 1
        end;
        measure (Printf.sprintf "%d shards" shards) (Router.port router))
  in
  let speedup_update = routed.rt_update_ups /. single.rt_update_ups in
  let speedup_ingest = routed.rt_ingest_dps /. single.rt_ingest_dps in
  (* The 2x gate needs somewhere for the parallelism to come from: N
     concurrent WAL fsyncs always, N CPUs ideally.  On boxes whose
     domain budget cannot host the shard count the speedup is reported
     but not enforced — the same convention as the serve sweep's
     monotonicity check. *)
  let enforce = Pool.domain_budget () >= shards in
  let no_errors = single.rt_errors = 0 && routed.rt_errors = 0 in
  let pass =
    no_errors
    && ((not enforce) || (speedup_update >= 2.0 && speedup_ingest >= 2.0))
  in
  Printf.printf
    "\nspeedup at %d shards: updates %.2fx, ingest %.2fx (gate: >= 2.0x%s)\n\
     router criteria (no errors, >= 2x aggregate throughput%s): %s\n"
    shards speedup_update speedup_ingest
    (if enforce then "" else " [not enforced: domain budget < shard count]")
    (if enforce then "" else " [informational]")
    (if pass then "PASS" else "FAIL");
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n\
        \  \"shards\": %d,\n\
        \  \"docs\": %d,\n\
        \  \"clients\": %d,\n\
        \  \"updates_per_client\": %d,\n\
        \  \"fsync\": \"always\",\n\
        \  \"domain_budget\": %d,\n\
        \  \"speedup_update\": %.2f,\n\
        \  \"speedup_ingest\": %.2f,\n\
        \  \"gate_enforced\": %b,\n\
        \  \"pass\": %b,\n\
        \  \"rows\": [\n"
        shards docs clients updates (Pool.domain_budget ()) speedup_update
        speedup_ingest enforce pass;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"topology\": \"%s\", \"ingest_docs_per_s\": %.1f, \
             \"updates_per_s\": %.1f, \"errors\": %d}%s\n"
            r.rt_label r.rt_ingest_dps r.rt_update_ups r.rt_errors
            (if i = 1 then "" else ","))
        [ single; routed ];
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json;
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Durability: WAL append throughput per fsync policy, recovery time
   vs WAL length, snapshot write + snapshot-based recovery             *)

module Wal = Standoff_store.Wal
module Durable = Standoff.Durable
module Parser = Standoff_xml.Parser
module Convert = Standoff_convert.Convert

type wt_row = {
  wt_policy : string;
  wt_updates : int;
  wt_seconds : float;
  wt_ups : float;  (* acknowledged updates per second *)
}

type rc_row = {
  rc_records : int;
  rc_seconds : float;
  rc_rps : float;  (* replayed records per second *)
  rc_ok : bool;  (* recovery replayed exactly the logged count *)
}

let bench_persist ?(updates = 5000) ?(sweep = [ 1000; 5000; 10_000 ]) ?json ()
    =
  section "Durability: WAL throughput, recovery time, snapshots";
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let fresh_dir =
    let root = Filename.temp_file "standoff-bench-persist" "" in
    Sys.remove root;
    Unix.mkdir root 0o755;
    at_exit (fun () -> try rm_rf root with Sys_error _ | Unix.Unix_error _ -> ());
    let n = ref 0 in
    fun () ->
      incr n;
      Filename.concat root (Printf.sprintf "d%d" !n)
  in
  (* Synthetic store: one document, ~10k disjoint word annotations —
     the shape of a shredded text corpus under annotation editing. *)
  let n_annot = 10_000 in
  let doc_name = "persist.xml" in
  let seed () =
    let buf = Buffer.create (n_annot * 28) in
    Buffer.add_string buf "<t>";
    for i = 0 to n_annot - 1 do
      Buffer.add_string buf
        (Printf.sprintf "<w start=\"%d\" end=\"%d\"/>" (i * 10) ((i * 10) + 9))
    done;
    Buffer.add_string buf "</t>";
    let coll = Collection.create () in
    ignore (Collection.load_string coll ~name:doc_name (Buffer.contents buf));
    coll
  in
  let cfg = Config.default in
  (* One acknowledged update through the durable path: validate + apply
     against the store, then log — exactly the server's write path. *)
  let apply_and_log dur cat d words k =
    let pre = words.(k mod Array.length words) in
    let region = Region.make_int (k * 7 mod 90_000) ((k * 7 mod 90_000) + 40) in
    Standoff.Update.set_region cat cfg d ~pre region;
    ignore
      (Durable.log dur
         (Wal.Set_region
            {
              doc = doc_name;
              start_attr = cfg.Config.start_name;
              end_attr = cfg.Config.end_name;
              ptype = cfg.Config.position_type;
              pre;
              start_pos = Region.start_pos region;
              end_pos = Region.end_pos region;
            }))
  in
  let open_store ~policy dir =
    let dur, recovery = Durable.open_dir ~policy ~seed dir in
    let coll = Durable.collection dur in
    let d =
      Collection.doc coll
        (Option.get (Collection.doc_id_of_name coll doc_name))
    in
    (dur, recovery, d, Doc.elements_named d "w")
  in
  (* --- 1. append throughput per fsync policy ----------------------- *)
  Printf.printf
    "document: %d annotations; %d set_region updates per point\n\n" n_annot
    updates;
  Printf.printf "%-12s%12s%16s\n" "fsync" "wall" "updates/sec";
  Printf.printf "%s\n" (String.make 40 '-');
  let wt_rows =
    List.map
      (fun policy ->
        let dir = fresh_dir () in
        let dur, _, d, words = open_store ~policy dir in
        let cat = Standoff.Catalog.create () in
        (* Warm the update path (lazy region index) outside the clock. *)
        apply_and_log dur cat d words 0;
        let _, t =
          Timing.time (fun () ->
              for k = 1 to updates do
                apply_and_log dur cat d words k
              done)
        in
        Durable.close dur;
        let row =
          {
            wt_policy = Wal.fsync_policy_to_string policy;
            wt_updates = updates;
            wt_seconds = t;
            wt_ups = float_of_int updates /. t;
          }
        in
        Printf.printf "%-12s%10.1fms%16.0f\n%!" row.wt_policy
          (t *. 1000.0) row.wt_ups;
        row)
      [ Wal.Always; Wal.Batch 64; Wal.Never ]
  in
  (* --- 2. recovery time vs WAL length ------------------------------ *)
  Printf.printf "\n%-12s%12s%16s%8s\n" "records" "recovery" "records/sec" "ok";
  Printf.printf "%s\n" (String.make 48 '-');
  let rc_rows =
    List.map
      (fun n ->
        let dir = fresh_dir () in
        (let dur, _, d, words = open_store ~policy:Wal.Never dir in
         let cat = Standoff.Catalog.create () in
         for k = 1 to n do
           apply_and_log dur cat d words k
         done;
         Durable.close dur);
        let (_, recovery), t =
          Timing.time (fun () ->
              let dur, recovery = Durable.open_dir ~seed dir in
              Durable.close dur;
              (dur, recovery))
        in
        let row =
          {
            rc_records = n;
            rc_seconds = t;
            rc_rps = float_of_int n /. t;
            rc_ok = recovery.Durable.rec_replayed = n;
          }
        in
        Printf.printf "%-12d%10.1fms%16.0f%8b\n%!" n (t *. 1000.0) row.rc_rps
          row.rc_ok;
        row)
      sweep
  in
  (* --- 3. snapshot write and snapshot-based recovery --------------- *)
  let snap_n = List.fold_left max 0 sweep in
  let dir = fresh_dir () in
  (let dur, _, d, words = open_store ~policy:Wal.Never dir in
   let cat = Standoff.Catalog.create () in
   for k = 1 to snap_n do
     apply_and_log dur cat d words k
   done;
   let path, snap_t = Timing.time (fun () -> Durable.snapshot dur ~generation:1) in
   Durable.close dur;
   let snap_bytes = (Unix.stat path).Unix.st_size in
   let (recovery, rec_t) =
     Timing.time (fun () ->
         let dur, recovery = Durable.open_dir ~seed dir in
         Durable.close dur;
         recovery)
   in
   let from_snapshot = recovery.Durable.rec_snapshot <> None in
   let snap_ok = from_snapshot && recovery.Durable.rec_replayed = 0 in
   Printf.printf
     "\nsnapshot after %d updates: write %.1fms (%d bytes); recovery from \
      snapshot %.1fms, %d WAL record(s) replayed -> %s\n"
     snap_n (snap_t *. 1000.0) snap_bytes (rec_t *. 1000.0)
     recovery.Durable.rec_replayed
     (if snap_ok then "PASS" else "FAIL");
   let recovery_ok = List.for_all (fun r -> r.rc_ok) rc_rows in
   let pass = recovery_ok && snap_ok in
   Printf.printf
     "durability criteria (every WAL record replayed, snapshot recovery \
      replays 0): %s\n"
     (if pass then "PASS" else "FAIL");
   Option.iter
     (fun file ->
       let oc = open_out file in
       Printf.fprintf oc
         "{\n  \"annotations\": %d,\n  \"updates\": %d,\n\
         \  \"snapshot\": {\"updates\": %d, \"write_ms\": %.3f, \"bytes\": \
          %d, \"recover_ms\": %.3f, \"replayed\": %d, \"ok\": %b},\n\
         \  \"pass\": %b,\n  \"throughput\": [\n"
         n_annot updates snap_n (snap_t *. 1000.0) snap_bytes
         (rec_t *. 1000.0) recovery.Durable.rec_replayed snap_ok pass;
       List.iteri
         (fun i r ->
           Printf.fprintf oc
             "    {\"fsync\": \"%s\", \"updates\": %d, \"seconds\": %.6f, \
              \"updates_per_sec\": %.1f}%s\n"
             r.wt_policy r.wt_updates r.wt_seconds r.wt_ups
             (if i = List.length wt_rows - 1 then "" else ","))
         wt_rows;
       Printf.fprintf oc "  ],\n  \"recovery\": [\n";
       List.iteri
         (fun i r ->
           Printf.fprintf oc
             "    {\"records\": %d, \"seconds\": %.6f, \"records_per_sec\": \
              %.1f, \"ok\": %b}%s\n"
             r.rc_records r.rc_seconds r.rc_rps r.rc_ok
             (if i = List.length rc_rows - 1 then "" else ","))
         rc_rows;
       Printf.fprintf oc "  ]\n}\n";
       close_out oc;
       Printf.printf "wrote %s\n" file)
     json;
   if not pass then exit 1)

(* ------------------------------------------------------------------ *)
(* Bulk ingestion: batched WAL record vs per-document loads            *)

let bench_ingest ?(docs = 40) ?json () =
  section "Bulk ingestion: one batched WAL record vs per-document loads";
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let fresh_dir =
    let root = Filename.temp_file "standoff-bench-ingest" "" in
    Sys.remove root;
    Unix.mkdir root 0o755;
    at_exit (fun () -> try rm_rf root with Sys_error _ | Unix.Unix_error _ -> ());
    let n = ref 0 in
    fun () ->
      incr n;
      Filename.concat root (Printf.sprintf "d%d" !n)
  in
  (* Base document the probe query runs against.  It lives in the seed,
     so recovery rebuilds it without consulting the WAL; every ingest
     bumps the catalog version, so on the per-document path the probe
     recomputes after each load — the cost batching amortizes away. *)
  let n_base = 20_000 in
  let base_xml =
    let buf = Buffer.create (n_base * 28) in
    Buffer.add_string buf
      (Printf.sprintf "<t start=\"0\" end=\"%d\">" ((n_base * 10) - 1));
    for i = 0 to n_base - 1 do
      Buffer.add_string buf
        (Printf.sprintf "<w start=\"%d\" end=\"%d\"/>" (i * 10) ((i * 10) + 9))
    done;
    Buffer.add_string buf "</t>";
    Buffer.contents buf
  in
  let seed () =
    let coll = Collection.create () in
    ignore (Collection.load_string coll ~name:"base.xml" base_xml);
    coll
  in
  let probe = "count(doc(\"base.xml\")//t/select-narrow::w)" in
  let expected = string_of_int n_base in
  (* Inline sources: small TEI-ish documents, converted to stand-off
     form outside the clock (conversion cost is identical either way). *)
  let words_per_doc = 50 in
  let sources =
    Array.init docs (fun i ->
        let buf = Buffer.create 2048 in
        Buffer.add_string buf "<doc><p>";
        for k = 0 to words_per_doc - 1 do
          Buffer.add_string buf (Printf.sprintf "<w>tok%d-%d</w> " i k)
        done;
        Buffer.add_string buf "</p></doc>";
        (Printf.sprintf "ing%03d.xml" i, Buffer.contents buf))
  in
  let convert_all () =
    Array.map
      (fun (name, xml) ->
        let conv = Convert.to_standoff (Parser.parse_string xml) in
        ( Doc.of_dom ~name conv.Convert.doc,
          (name ^ ".blob", conv.Convert.blob) ))
      sources
  in
  let check_probe eng =
    let r = Engine.run eng probe in
    let got = String.trim r.Engine.serialized in
    if got <> expected then
      failwith
        (Printf.sprintf "ingest probe answered %S (expected %s)" got expected)
  in
  (* One timed run: open a durable store (fsync on every record, the
     server's acknowledged-write policy), wire the engine's durability
     hook, then load all documents — one Engine.ingest per document or
     a single batched call — probing after each load. *)
  let run ~batched dir =
    let inputs = convert_all () in
    let dur, _ = Durable.open_dir ~policy:Wal.Always ~seed dir in
    let coll = Durable.collection dur in
    let eng = Engine.create ~jobs:1 ~cache:Engine.Cache_result coll in
    Engine.set_on_update eng (Some (fun op -> ignore (Durable.log dur op)));
    (* Warm the base doc's region index and the probe plan off-clock. *)
    check_probe eng;
    let (), t =
      Timing.time (fun () ->
          if batched then begin
            ignore
              (Engine.ingest eng
                 (Array.to_list (Array.map fst inputs))
                 (Array.to_list (Array.map snd inputs)));
            Array.iter (fun _ -> check_probe eng) inputs
          end
          else
            Array.iter
              (fun (d, b) ->
                ignore (Engine.ingest eng [ d ] [ b ]);
                check_probe eng)
              inputs)
    in
    Durable.close dur;
    t
  in
  (* Reopen a run's directory and check everything came back. *)
  let verify dir ~expect_replayed =
    let dur, recovery = Durable.open_dir ~seed dir in
    let coll = Durable.collection dur in
    let name0, _ = sources.(0) in
    let eng = Engine.create ~jobs:1 coll in
    let r =
      Engine.run eng (Printf.sprintf "count(doc(%S)//w)" name0)
    in
    let ok =
      recovery.Durable.rec_replayed = expect_replayed
      && Collection.doc_count coll = docs + 1
      && Collection.blob coll (name0 ^ ".blob") <> None
      && String.trim r.Engine.serialized = string_of_int words_per_doc
    in
    Durable.close dur;
    (recovery.Durable.rec_replayed, ok)
  in
  Printf.printf
    "%d documents (%d words each), probe after every load; fsync=always\n\n"
    docs words_per_doc;
  let dir_ind = fresh_dir () in
  let t_ind = run ~batched:false dir_ind in
  let dir_bulk = fresh_dir () in
  let t_bulk = run ~batched:true dir_bulk in
  let per_ind = t_ind /. float_of_int docs in
  let per_bulk = t_bulk /. float_of_int docs in
  let speedup = per_ind /. per_bulk in
  Printf.printf "%-14s%12s%14s%14s\n" "path" "wall" "per-doc" "WAL records";
  Printf.printf "%s\n" (String.make 54 '-');
  Printf.printf "%-14s%10.1fms%12.3fms%14d\n" "per-document" (t_ind *. 1000.0)
    (per_ind *. 1000.0) docs;
  Printf.printf "%-14s%10.1fms%12.3fms%14d\n" "bulk" (t_bulk *. 1000.0)
    (per_bulk *. 1000.0) 1;
  let ind_replayed, ind_ok = verify dir_ind ~expect_replayed:docs in
  let bulk_replayed, bulk_ok = verify dir_bulk ~expect_replayed:1 in
  Printf.printf
    "\nrecovery: per-document replayed %d record(s) -> %s; bulk replayed %d \
     record(s) -> %s\n"
    ind_replayed
    (if ind_ok then "PASS" else "FAIL")
    bulk_replayed
    (if bulk_ok then "PASS" else "FAIL");
  let pass = speedup >= 5.0 && ind_ok && bulk_ok in
  Printf.printf
    "bulk ingestion criterion (per-doc speedup %.1fx >= 5x, both stores \
     recover): %s\n"
    speedup
    (if pass then "PASS" else "FAIL");
  Option.iter
    (fun file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n  \"docs\": %d,\n  \"words_per_doc\": %d,\n\
        \  \"probe_annotations\": %d,\n\
        \  \"individual\": {\"seconds\": %.6f, \"per_doc_ms\": %.4f, \
         \"wal_records\": %d, \"recovered\": %b},\n\
        \  \"bulk\": {\"seconds\": %.6f, \"per_doc_ms\": %.4f, \
         \"wal_records\": %d, \"recovered\": %b},\n\
        \  \"speedup\": %.2f,\n  \"pass\": %b\n}\n"
        docs words_per_doc n_base t_ind (per_ind *. 1000.0) docs ind_ok t_bulk
        (per_bulk *. 1000.0) 1 bulk_ok speedup pass;
      close_out oc;
      Printf.printf "wrote %s\n" file)
    json;
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure family    *)

let micro () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  (* Shared fixtures, built once. *)
  let synth_doc n seed =
    let rng = Standoff_util.Prng.create seed in
    let buf = Buffer.create (n * 32) in
    Buffer.add_string buf "<t>";
    for _ = 1 to n do
      let s = Standoff_util.Prng.int rng 1_000_000 in
      let w = 1 + Standoff_util.Prng.int rng 1000 in
      Buffer.add_string buf
        (Printf.sprintf "<a start=\"%d\" end=\"%d\"/>" s (s + w))
    done;
    Buffer.add_string buf "</t>";
    Doc.parse ~name:(Printf.sprintf "synth%Ld" seed) (Buffer.contents buf)
  in
  let d = synth_doc 20_000 1L in
  let annots = Annots.extract Config.default d in
  let all_ids = annots.Annots.ids in
  let ctx = Array.sub all_ids 0 2_000 in
  let ctx_iters = Array.init (Array.length ctx) (fun i -> i / 4) in
  let loop = Array.init 500 Fun.id in
  let setup = Setup.build ~scale:0.005 ~with_standard:true () in
  let q2 = Queries.q2.Queries.standoff setup.Setup.standoff_doc in
  let q6 = Queries.q6.Queries.standoff setup.Setup.standoff_doc in
  (* Warm caches outside measurement. *)
  ignore (Engine.run setup.Setup.engine ~rollback_constructed:true q6);
  let xmark_dom = Gen.generate { Gen.scale = 0.002; seed = 3L } in
  let tests =
    Test.make_grouped ~name:"standoff"
      [
        Test.make ~name:"table3.1/spec-oracle (figure-1 doc)"
          (Staged.stage (fun () ->
               let fd = Doc.parse ~name:"f1" figure1_doc in
               let a = Annots.extract Config.default fd in
               Standoff.Spec.join Op.Select_wide a
                 ~context:(Doc.elements_named fd "music")
                 ~candidates:(Doc.elements_named fd "shot")));
        Test.make ~name:"figure4/ll-select-narrow (20k regions)"
          (Staged.stage (fun () ->
               let c =
                 MJ.context_of_annotations annots ~iters:ctx_iters ~pres:ctx
               in
               MJ.select_narrow ~single_region:true c annots.Annots.index));
        Test.make ~name:"figure4/ll-select-wide (20k regions)"
          (Staged.stage (fun () ->
               let c =
                 MJ.context_of_annotations annots ~iters:ctx_iters ~pres:ctx
               in
               MJ.select_wide ~single_region:true c annots.Annots.index));
        Test.make ~name:"figure6/q2-loop-lifted (xmark 0.005)"
          (Staged.stage (fun () ->
               Engine.run setup.Setup.engine ~strategy:Config.Loop_lifted
                 ~rollback_constructed:true q2));
        Test.make ~name:"figure6/q6-loop-lifted (xmark 0.005)"
          (Staged.stage (fun () ->
               Engine.run setup.Setup.engine ~strategy:Config.Loop_lifted
                 ~rollback_constructed:true q6));
        Test.make ~name:"figure6/q6-basic (xmark 0.005)"
          (Staged.stage (fun () ->
               Engine.run setup.Setup.engine ~strategy:Config.Basic_merge
                 ~rollback_constructed:true q6));
        Test.make ~name:"e4/staircase-descendant (xmark 0.005)"
          (Staged.stage
             (let doc_id =
                Option.get
                  (Collection.doc_id_of_name setup.Setup.coll
                     setup.Setup.standard_doc)
              in
              let sd = Collection.doc setup.Setup.coll doc_id in
              let auctions = Doc.elements_named sd "open_auction" in
              let iters = Array.init (Array.length auctions) Fun.id in
              fun () ->
                Axes.eval_lifted sd Axes.Descendant ~context_iters:iters
                  ~context_pres:auctions ~test:(Node_test.Name "bidder")));
        Test.make ~name:"substrate/region-index-build (20k regions)"
          (Staged.stage (fun () -> Annots.extract Config.default d));
        Test.make ~name:"substrate/shred (xmark 0.002)"
          (Staged.stage (fun () -> Doc.of_dom ~name:"bench" xmark_dom));
        Test.make ~name:"substrate/reject-narrow-ll (20k regions)"
          (Staged.stage (fun () ->
               Join.run_lifted Op.Reject_narrow Config.Loop_lifted annots
                 ~loop
                 ~context_iters:(Array.init 500 Fun.id)
                 ~context_pres:(Array.sub all_ids 0 500)
                 ~candidates:(Some (Array.sub all_ids 0 1000))
                 ()));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      Printf.printf "%-52s %12.1f us/run\n" name (ns /. 1000.0))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Argument handling                                                   *)

let default_scales = [ 0.002; 0.01; 0.02; 0.1; 0.2 ]

let parse_figure6_args args =
  let scales = ref default_scales in
  let timeout = ref 10.0 in
  let queries = ref Queries.all in
  let csv = ref None in
  let jobs = ref (Config.default_jobs ()) in
  let rec go = function
    | [] -> ()
    | "--scales" :: v :: rest ->
        scales :=
          List.map float_of_string (String.split_on_char ',' v);
        go rest
    | "--timeout" :: v :: rest ->
        timeout := float_of_string v;
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--csv" :: v :: rest ->
        csv := Some v;
        go rest
    | "--jobs" :: v :: rest ->
        jobs := max 1 (int_of_string v);
        go rest
    | arg :: _ -> failwith (Printf.sprintf "figure-6: unknown argument %s" arg)
  in
  go args;
  (!scales, !timeout, !queries, !csv, !jobs)

let parse_parallel_scaling_args args =
  let scale = ref 0.1 in
  let shards = ref 6 in
  let shard_scale = ref 0.02 in
  let jobs_list = ref [ 1; 2; 4; 8 ] in
  let repeats = ref 5 in
  let queries = ref Queries.all in
  let csv = ref None in
  let json = ref None in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        go rest
    | "--shard-scale" :: v :: rest ->
        shard_scale := float_of_string v;
        go rest
    | "--jobs" :: v :: rest ->
        jobs_list :=
          List.map (fun s -> max 1 (int_of_string s))
            (String.split_on_char ',' v);
        go rest
    | "--repeats" :: v :: rest ->
        repeats := max 1 (int_of_string v);
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--csv" :: v :: rest ->
        csv := Some v;
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | arg :: _ ->
        failwith (Printf.sprintf "parallel-scaling: unknown argument %s" arg)
  in
  go args;
  (!scale, !shards, !shard_scale, !jobs_list, !repeats, !queries, !csv, !json)

let parse_obs_overhead_args args =
  let scale = ref 0.02 in
  let repeats = ref 15 in
  let queries = ref Queries.all in
  let json = ref (Some "BENCH_obs.json") in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--repeats" :: v :: rest ->
        repeats := max 3 (int_of_string v);
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ ->
        failwith (Printf.sprintf "obs-overhead: unknown argument %s" arg)
  in
  go args;
  (!scale, !repeats, !queries, !json)

let parse_cache_args args =
  let scale = ref 0.02 in
  let repeats = ref 5 in
  let queries = ref Queries.all in
  let json = ref (Some "BENCH_cache.json") in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--repeats" :: v :: rest ->
        repeats := max 1 (int_of_string v);
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "cache: unknown argument %s" arg)
  in
  go args;
  (!scale, !repeats, !queries, !json)

let parse_dataguide_args args =
  let scales = ref [ 0.1; 0.2 ] in
  let repeats = ref 5 in
  let queries = ref Queries.all in
  let json = ref (Some "BENCH_dataguide.json") in
  let rec go = function
    | [] -> ()
    | "--scales" :: v :: rest ->
        scales := List.map float_of_string (String.split_on_char ',' v);
        go rest
    | "--repeats" :: v :: rest ->
        repeats := max 1 (int_of_string v);
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "dataguide: unknown argument %s" arg)
  in
  go args;
  (!scales, !repeats, !queries, !json)

let parse_serve_args args =
  let scale = ref 0.02 in
  let clients = ref 8 in
  let requests = ref 40 in
  let worker_counts = ref [ 1; 4; 8 ] in
  let queries = ref Queries.all in
  let json = ref (Some "BENCH_server.json") in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--clients" :: v :: rest ->
        clients := max 1 (int_of_string v);
        go rest
    | "--requests" :: v :: rest ->
        requests := max 1 (int_of_string v);
        go rest
    | "--workers" :: v :: rest ->
        worker_counts :=
          List.map (fun s -> max 1 (int_of_string s))
            (String.split_on_char ',' v);
        go rest
    | "--queries" :: v :: rest ->
        queries := List.map Queries.find (String.split_on_char ',' v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "serve: unknown argument %s" arg)
  in
  go args;
  (!scale, !clients, !requests, !worker_counts, !queries, !json)

let parse_persist_args args =
  let updates = ref 5000 in
  let sweep = ref [ 1000; 5000; 10_000 ] in
  let json = ref (Some "BENCH_persist.json") in
  let rec go = function
    | [] -> ()
    | "--updates" :: v :: rest ->
        updates := max 1 (int_of_string v);
        go rest
    | "--sweep" :: v :: rest ->
        sweep :=
          List.map (fun s -> max 1 (int_of_string s))
            (String.split_on_char ',' v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "persist: unknown argument %s" arg)
  in
  go args;
  (!updates, !sweep, !json)

let parse_ingest_args args =
  let docs = ref 40 in
  let json = ref (Some "BENCH_ingest.json") in
  let rec go = function
    | [] -> ()
    | "--docs" :: v :: rest ->
        docs := max 1 (int_of_string v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "ingest: unknown argument %s" arg)
  in
  go args;
  (!docs, !json)

let parse_router_args args =
  let shards = ref 4 in
  let docs = ref 256 in
  let clients = ref 8 in
  let updates = ref 100 in
  let json = ref (Some "BENCH_router.json") in
  let rec go = function
    | [] -> ()
    | "--shards" :: v :: rest ->
        shards := max 1 (int_of_string v);
        go rest
    | "--docs" :: v :: rest ->
        docs := max 1 (int_of_string v);
        go rest
    | "--clients" :: v :: rest ->
        clients := max 1 (int_of_string v);
        go rest
    | "--updates" :: v :: rest ->
        updates := max 1 (int_of_string v);
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--no-json" :: rest ->
        json := None;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "router: unknown argument %s" arg)
  in
  go args;
  (!shards, !docs, !clients, !updates, !json)

let parse_scale_jobs_args ~cmd ~default_scale args =
  let scale = ref default_scale in
  let jobs = ref (Config.default_jobs ()) in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        go rest
    | "--jobs" :: v :: rest ->
        jobs := max 1 (int_of_string v);
        go rest
    | arg :: _ -> failwith (Printf.sprintf "%s: unknown argument %s" cmd arg)
  in
  go args;
  (!scale, !jobs)

let () =
  match Array.to_list Sys.argv with
  | _ :: "table-3-1" :: _ -> table_3_1 ()
  | _ :: "figure-4" :: _ -> figure_4 ()
  | _ :: "figure-6" :: rest ->
      let scales, timeout, queries, csv, jobs = parse_figure6_args rest in
      figure_6 ?csv ~scales ~timeout ~queries ~jobs ()
  | _ :: "staircase-vs-standoff" :: _ -> staircase_vs_standoff ()
  | _ :: "active-set" :: _ -> active_set_ablation ()
  | _ :: "scaling" :: rest ->
      let _, jobs = parse_scale_jobs_args ~cmd:"scaling" ~default_scale:0.0 rest in
      scaling ~jobs ()
  | _ :: "planner" :: rest ->
      let scale, jobs =
        parse_scale_jobs_args ~cmd:"planner" ~default_scale:0.01 rest
      in
      planner ~scale ~jobs ()
  | _ :: "parallel-scaling" :: rest ->
      let scale, shards, shard_scale, jobs_list, repeats, queries, csv, json =
        parse_parallel_scaling_args rest
      in
      parallel_scaling ~scale ~shards ~shard_scale ~jobs_list ~repeats ?csv
        ?json ~queries ()
  | _ :: "obs-overhead" :: rest ->
      let scale, repeats, queries, json = parse_obs_overhead_args rest in
      obs_overhead ~scale ~repeats ?json ~queries ()
  | _ :: "cache" :: rest ->
      let scale, repeats, queries, json = parse_cache_args rest in
      bench_cache ~scale ~repeats ?json ~queries ()
  | _ :: "dataguide" :: rest ->
      let scales, repeats, queries, json = parse_dataguide_args rest in
      bench_dataguide ~scales ~repeats ?json ~queries ()
  | _ :: "serve" :: rest ->
      let scale, clients, requests, worker_counts, queries, json =
        parse_serve_args rest
      in
      bench_serve ~scale ~clients ~requests ~worker_counts ?json ~queries ()
  | _ :: "persist" :: rest ->
      let updates, sweep, json = parse_persist_args rest in
      bench_persist ~updates ~sweep ?json ()
  | _ :: "ingest" :: rest ->
      let docs, json = parse_ingest_args rest in
      bench_ingest ~docs ?json ()
  | _ :: "router" :: rest ->
      let shards, docs, clients, updates, json = parse_router_args rest in
      bench_router ~shards ~docs ~clients ~updates ?json ()
  | _ :: "micro" :: _ -> micro ()
  | [ _ ] | _ :: "all" :: _ ->
      table_3_1 ();
      figure_4 ();
      figure_6 ~scales:default_scales ~timeout:10.0 ~queries:Queries.all
        ~jobs:(Config.default_jobs ()) ();
      staircase_vs_standoff ();
      active_set_ablation ();
      scaling ~jobs:(Config.default_jobs ()) ();
      planner ~jobs:(Config.default_jobs ()) ();
      micro ()
  | _ :: cmd :: _ ->
      Printf.eprintf
        "unknown command %s (expected: table-3-1 | figure-4 | figure-6 | \
         staircase-vs-standoff | active-set | scaling | planner | \
         parallel-scaling | obs-overhead | cache | serve | persist | ingest | \
         router | micro | all)\n"
        cmd;
      exit 1
  | [] -> assert false
